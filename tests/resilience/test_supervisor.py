"""The heartbeat failure detector: misses, declarations, escalations, log."""

import pytest

from repro.resilience import FaultPlan, Supervisor
from repro.resilience.supervisor import BEAT_CODES, HeartbeatHook


class FakeChannel:
    def __init__(self):
        self.beats = []

    def beat(self, code=0):
        self.beats.append(code)


class FakeState:
    def __init__(self, k=0):
        self.k = k


class TestDetector:
    def test_progress_is_ok(self):
        sup = Supervisor(beat_timeout=1.0, max_missed=3)
        sup.begin_wait(0, count=0, now=0.0)
        assert sup.observe(0, count=1, now=0.5, step=0) == "ok"
        assert sup.observe(0, count=2, now=5.0, step=0) == "ok"  # progress trumps time
        assert list(sup.events) == []

    def test_silence_scores_misses_then_death(self):
        sup = Supervisor(beat_timeout=1.0, max_missed=3)
        sup.begin_wait(0, count=5, now=0.0)
        assert sup.observe(0, 5, now=0.5, step=2) == "ok"    # within the window
        assert sup.observe(0, 5, now=1.0, step=2) == "miss"  # window 1 expired
        assert sup.observe(0, 5, now=2.0, step=2) == "miss"
        assert sup.observe(0, 5, now=3.0, step=2) == "dead"
        kinds = [e.kind for e in sup.events]
        assert kinds == ["beat_miss", "beat_miss", "beat_miss", "declared_dead"]
        assert sup.misses == 3
        assert all(e.worker_id == 0 and e.step == 2 for e in sup.events)

    def test_progress_clears_streak_and_logs_recovery(self):
        sup = Supervisor(beat_timeout=1.0, max_missed=2)
        sup.begin_wait(0, count=0, now=0.0)
        assert sup.observe(0, 0, now=1.0, step=0) == "miss"
        assert sup.observe(0, 1, now=1.5, step=0) == "ok"  # beat arrived
        assert [e.kind for e in sup.events] == ["beat_miss", "recovered"]
        # streak reset: takes max_missed fresh misses to die again
        assert sup.observe(0, 1, now=2.5, step=0) == "miss"
        assert sup.observe(0, 1, now=3.5, step=0) == "dead"

    def test_begin_wait_rearms_between_rounds(self):
        # idle time between rounds must never count as a hang
        sup = Supervisor(beat_timeout=1.0, max_missed=2)
        sup.begin_wait(0, count=3, now=0.0)
        assert sup.observe(0, 3, now=1.0, step=0) == "miss"
        sup.begin_wait(0, count=3, now=100.0)  # next round, same counter
        assert sup.observe(0, 3, now=100.5, step=1) == "ok"
        assert sup.observe(0, 3, now=101.0, step=1) == "miss"  # streak restarted at 0
        assert sup.observe(0, 3, now=102.0, step=1) == "dead"

    def test_note_reply_is_progress(self):
        sup = Supervisor(beat_timeout=1.0, max_missed=2)
        sup.begin_wait(0, count=0, now=0.0)
        assert sup.observe(0, 0, now=1.0, step=0) == "miss"
        sup.note_reply(0, now=1.2)
        assert sup.observe(0, 0, now=1.5, step=0) == "ok"

    def test_workers_tracked_independently(self):
        sup = Supervisor(beat_timeout=1.0, max_missed=1)
        sup.begin_wait(0, count=0, now=0.0)
        sup.begin_wait(1, count=0, now=0.0)
        assert sup.observe(0, 0, now=1.0, step=0) == "dead"
        assert sup.observe(1, 7, now=1.0, step=0) == "ok"

    def test_check_interval_is_half_the_beat_timeout(self):
        assert Supervisor(beat_timeout=0.5).check_interval == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            Supervisor(beat_timeout=-1.0)
        with pytest.raises(ValueError):
            Supervisor(beat_timeout=None)
        with pytest.raises((ValueError, TypeError)):
            Supervisor(max_missed=0)


class TestEscalationLog:
    def test_escalate_maps_rungs_to_event_kinds(self):
        sup = Supervisor()
        sup.escalate("heal", worker=1, step=4, detail="crash")
        sup.escalate("respawn", worker=1, step=4)
        sup.escalate("abort", worker=1, step=5, detail="no quorum")
        assert [e.kind for e in sup.events] == [
            "escalate_heal", "escalate_respawn", "checkpoint_abort"]

    def test_event_log_and_summary_are_json_ready(self):
        import json

        sup = Supervisor(beat_timeout=1.0, max_missed=1)
        sup.begin_wait(2, count=0, now=0.0)
        sup.observe(2, 0, now=1.0, step=3)
        sup.escalate("heal", worker=2, step=3)
        log = sup.event_log()
        assert log[0] == {"step": 3, "worker_id": 2, "kind": "beat_miss",
                          "detail": log[0]["detail"]}
        s = sup.summary()
        assert s["n_events"] == 3
        assert s["event_counts"] == {"beat_miss": 1, "declared_dead": 1,
                                     "escalate_heal": 1}
        json.dumps({"events": log, "summary": s})  # must not raise


class TestHeartbeatHook:
    def test_beats_at_every_boundary(self):
        chan = FakeChannel()
        hook = HeartbeatHook(chan)
        state = FakeState(k=0)
        hook.on_step_start(state)
        hook.on_stage_start("sample", state)
        hook.on_stage_end("sample", state, 0.01)
        hook.on_step_end(state)
        assert chan.beats == [BEAT_CODES["recv"], BEAT_CODES["stage_start"],
                              BEAT_CODES["stage_end"], BEAT_CODES["reply"]]

    def test_slow_heartbeat_fault_mutes_that_round_only(self):
        plan = FaultPlan(seed=0).slow_heartbeat(worker=1, step=4)
        chan = FakeChannel()
        hook = HeartbeatHook(chan, plan, worker_id=1)
        hook.on_stage_start("sample", FakeState(k=4))  # muted
        assert chan.beats == []
        hook.on_stage_start("sample", FakeState(k=5))  # not muted
        assert chan.beats == [BEAT_CODES["stage_start"]]
        # other workers unaffected at the faulty step
        other = FakeChannel()
        HeartbeatHook(other, plan, worker_id=0).on_stage_start("sample", FakeState(k=4))
        assert other.beats == [BEAT_CODES["stage_start"]]


class TestEventRingBuffer:
    def test_cap_drops_oldest_and_counts_evictions(self):
        sup = Supervisor(beat_timeout=0.1, event_cap=4)
        for k in range(7):
            sup.escalate("heal", worker=0, step=k, detail=f"n{k}")
        assert len(sup.events) == 4
        assert sup.events_dropped == 3
        # Oldest evicted, newest retained, in order.
        assert [e.step for e in sup.events] == [3, 4, 5, 6]
        s = sup.summary()
        assert s["n_events"] == 4 and s["events_dropped"] == 3

    def test_default_cap_is_generous_and_unreached(self):
        sup = Supervisor(beat_timeout=0.1)
        for k in range(100):
            sup.escalate("heal", worker=0, step=k)
        assert sup.events_dropped == 0
        assert sup.summary()["events_dropped"] == 0

    def test_event_cap_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            Supervisor(event_cap=0)

    def test_detector_misses_respect_the_cap(self):
        # A multi-day flapping soak must not grow master memory: the miss
        # stream is bounded by the ring, and the dropped count keeps the
        # totals honest.
        sup = Supervisor(beat_timeout=0.01, max_missed=10**9, event_cap=8)
        now = 0.0
        sup.begin_wait(0, count=0, now=now)
        for k in range(50):
            now += 1.0  # every observation is a miss
            sup.observe(0, count=0, now=now, step=k)
        assert len(sup.events) == 8
        assert sup.events_dropped == 42
