"""Unit tests for cluster membership (statuses, ownership, rebalancing)."""

import numpy as np
import pytest

from repro.resilience.membership import Membership


class TestOwnership:
    def test_default_assignment_is_contiguous_blocks(self):
        m = Membership(8, 2)
        np.testing.assert_array_equal(m.owned(0), [0, 1, 2, 3])
        np.testing.assert_array_equal(m.owned(1), [4, 5, 6, 7])
        np.testing.assert_array_equal(m.owner_of(), [0, 0, 0, 0, 1, 1, 1, 1])
        np.testing.assert_array_equal(m.assignment(), m.owner_of())

    def test_explicit_assignment(self):
        m = Membership(4, 2, assignment=[1, 0, 1, 0])
        np.testing.assert_array_equal(m.owned(0), [1, 3])
        np.testing.assert_array_equal(m.owned(1), [0, 2])

    def test_indivisible_default_rejected(self):
        with pytest.raises(ValueError):
            Membership(7, 2)

    def test_set_owned_bumps_epoch(self):
        m = Membership(4, 2)
        before = m.epoch
        m.set_owned(0, [3, 0])
        np.testing.assert_array_equal(m.owned(0), [0, 3])  # sorted
        assert m.epoch == before + 1


class TestStatuses:
    def test_join_leave_evict_lifecycle(self):
        m = Membership(4, 2)
        assert m.status == ["init", "init"]
        m.join(0, step=0)
        m.join(1, step=0)
        assert m.live_workers() == [0, 1] and m.n_live == 2
        m.evict(1, step=3, detail="declared dead")
        assert not m.is_live(1)
        assert m.live_workers() == [0]
        # Eviction keeps ownership (state may still be checkpointed/donated).
        np.testing.assert_array_equal(m.owned(1), [2, 3])
        np.testing.assert_array_equal(m.live_owner_of(), [0, 0, -1, -1])
        kinds = [e.kind for e in m.events]
        assert kinds == ["join", "join", "evict"]


class TestRebalance:
    def test_deals_ascending_ids_to_least_loaded(self):
        m = Membership(8, 4)
        for w in range(4):
            m.join(w)
        m.evict(3)
        moves = m.rebalance(3, step=5)
        # Orphans 6, 7 dealt one each to the least-loaded (all tied at 2,
        # ties to the lowest id): 6 -> w0, 7 -> w1.
        np.testing.assert_array_equal(moves[0], [6])
        np.testing.assert_array_equal(moves[1], [7])
        assert 2 not in moves
        assert m.owned(3).size == 0
        np.testing.assert_array_equal(m.owned(0), [0, 1, 6])
        assert m.owner_of()[6] == 0 and m.owner_of()[7] == 1

    def test_deterministic_across_replays(self):
        def play():
            m = Membership(12, 3)
            for w in range(3):
                m.join(w)
            m.evict(2)
            return {w: ids.tolist() for w, ids in m.rebalance(2).items()}

        assert play() == play()

    def test_needs_a_live_survivor(self):
        m = Membership(4, 2)
        m.join(0), m.join(1)
        m.evict(0), m.evict(1)
        with pytest.raises(ValueError):
            m.rebalance(0)

    def test_rebalance_bumps_epoch_and_records_events(self):
        m = Membership(4, 2)
        m.join(0), m.join(1)
        m.evict(1)
        before = m.epoch
        m.rebalance(1, step=9)
        assert m.epoch == before + 1
        kinds = [e.kind for e in m.events]
        assert "adopt" in kinds and "rebalance" in kinds


class TestEventLog:
    def test_ring_buffer_drops_oldest_and_counts(self):
        m = Membership(4, 2, event_cap=3)
        for i in range(5):
            m.record(i, 0, "join", f"n{i}")
        assert len(m.events) == 3
        assert m.events_dropped == 2
        assert [e.step for e in m.events] == [2, 3, 4]
        s = m.summary()
        assert s["n_events"] == 3 and s["events_dropped"] == 2

    def test_summary_counts_by_kind(self):
        m = Membership(4, 2)
        m.join(0), m.join(1), m.evict(0)
        s = m.summary()
        assert s["event_counts"] == {"join": 2, "evict": 1}
        assert s["statuses"] == ["dead", "live"]
        assert s["owned_counts"] == [2, 2]
