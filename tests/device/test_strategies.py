"""Tests for host-transfer and data-layout strategy modelling (Section VI)."""

import pytest

from repro.device import get_platform
from repro.device.costmodel import (
    filter_round_cost_with_strategy,
    host_resampling_round_overhead,
    host_transfer_time,
    per_round_io_time,
)


def test_host_transfer_free_on_unified_memory():
    cpu = get_platform("2x-e5-2650")
    assert host_transfer_time(cpu, 1 << 30) == 0.0


def test_host_transfer_latency_plus_bandwidth():
    gpu = get_platform("gtx-580")
    small = host_transfer_time(gpu, 4)
    big = host_transfer_time(gpu, 1 << 30)
    assert small >= gpu.host_link_latency_us * 1e-6
    assert big > 0.15  # ~1 GiB over ~6 GB/s


def test_per_round_io_is_tiny():
    # The paper's design point: only measurements down and estimates up, so
    # I/O must be negligible against a ~ms round.
    gpu = get_platform("gtx-580")
    assert per_round_io_time(gpu, 9) < 1e-4


def test_soa_layout_slower_for_struct_sized_particles():
    dev = get_platform("gtx-580")
    aos = filter_round_cost_with_strategy(dev, 512, 2048, 9, layout="aos")
    soa = filter_round_cost_with_strategy(dev, 512, 2048, 9, layout="soa")
    # "transferring in SoA format will not result in efficient transfers, so
    # we store it in the AoS format".
    assert soa.total_seconds > 2 * aos.total_seconds


def test_host_resampling_strategy_slower_when_frequent():
    dev = get_platform("gtx-580")
    device_side = filter_round_cost_with_strategy(dev, 512, 2048, 9)
    host_side = filter_round_cost_with_strategy(dev, 512, 2048, 9, resampling_location="host")
    assert host_side.total_seconds > 2 * device_side.total_seconds


def test_host_resampling_amortizes_when_rare():
    # "This strategy is fast only if resampling is not needed very often."
    dev = get_platform("gtx-580")
    every = filter_round_cost_with_strategy(dev, 512, 2048, 9, resampling_location="host")
    rare = filter_round_cost_with_strategy(dev, 512, 2048, 9, resampling_location="host", resample_period=8)
    device_side = filter_round_cost_with_strategy(dev, 512, 2048, 9)
    assert rare.total_seconds < every.total_seconds
    assert rare.total_seconds < 1.5 * device_side.total_seconds


def test_strategy_validation():
    dev = get_platform("gtx-580")
    with pytest.raises(ValueError):
        filter_round_cost_with_strategy(dev, 512, 64, 9, layout="csr")
    with pytest.raises(ValueError):
        filter_round_cost_with_strategy(dev, 512, 64, 9, resampling_location="cloud")
    with pytest.raises(ValueError):
        host_resampling_round_overhead(dev, 1024, 9, resample_period=0)
