"""Tests for the embedded/cluster scaling extensions (Section IX directions)."""

import pytest

from repro.device import get_platform
from repro.device.costmodel import filter_round_cost
from repro.device.scaling import (
    EMBEDDED_PLATFORMS,
    ClusterSpec,
    cluster_round_cost,
    cluster_speedup,
)


class TestEmbedded:
    def test_registry(self):
        assert "embedded-soc-gpu" in EMBEDDED_PLATFORMS
        soc = EMBEDDED_PLATFORMS["embedded-soc-gpu"]
        assert soc.tdp_watt <= 10.0
        assert soc.host_link_gbs is None  # unified memory

    def test_small_problem_realtime_large_problem_not(self):
        # The paper's embedded direction: real-time for smaller systems.
        soc = EMBEDDED_PLATFORMS["embedded-soc-gpu"]
        small = filter_round_cost(soc, 128, 32, 6)  # ~4K particles, small state
        big = filter_round_cost(soc, 512, 2048, 9)  # the 1M-particle setup
        assert small.update_rate_hz > 100.0  # usable real-time rate
        assert big.update_rate_hz < 30.0  # clearly not at 1M particles

    def test_embedded_far_slower_than_desktop_gpu(self):
        soc = EMBEDDED_PLATFORMS["embedded-soc-gpu"]
        desktop = get_platform("gtx-580")
        s = filter_round_cost(soc, 512, 256, 9).update_rate_hz
        d = filter_round_cost(desktop, 512, 256, 9).update_rate_hz
        assert d > 10 * s


class TestCluster:
    def cluster(self, n):
        return ClusterSpec(node=get_platform("gtx-580"), n_nodes=n)

    def test_single_node_has_no_network_cost(self):
        c = cluster_round_cost(self.cluster(1), 512, 1024, 9)
        assert c.seconds["network"] == 0.0

    def test_ring_scales_near_linearly(self):
        # Constant cut edges per node -> near-linear speedup at large N.
        s4 = cluster_speedup(self.cluster(4), 512, 4096, 9, scheme="ring")
        s8 = cluster_speedup(self.cluster(8), 512, 4096, 9, scheme="ring")
        assert s4 > 3.0
        assert s8 > 5.5
        assert s8 > s4

    def test_all_to_all_scales_worse_than_ring(self):
        ring = cluster_speedup(self.cluster(8), 512, 4096, 9, scheme="all-to-all")
        # All-to-All must pool globally; with 8 nodes its speedup trails ring's.
        ring_s = cluster_speedup(self.cluster(8), 512, 4096, 9, scheme="ring")
        assert ring < ring_s

    def test_uneven_partition_rejected(self):
        with pytest.raises(ValueError):
            cluster_round_cost(self.cluster(3), 512, 1024, 9)

    def test_spec_validation(self):
        with pytest.raises((ValueError, TypeError)):
            ClusterSpec(node=get_platform("gtx-580"), n_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(node=get_platform("gtx-580"), n_nodes=2, interconnect_gbs=0.0)

    def test_latency_hurts_small_problems(self):
        slow = ClusterSpec(node=get_platform("gtx-580"), n_nodes=8, interconnect_latency_us=500.0)
        fast = ClusterSpec(node=get_platform("gtx-580"), n_nodes=8, interconnect_latency_us=2.0)
        s_slow = cluster_speedup(slow, 64, 256, 9, scheme="ring")
        s_fast = cluster_speedup(fast, 64, 256, 9, scheme="ring")
        assert s_slow < s_fast
