"""Tests that the cost model reproduces the paper's performance shapes."""

import pytest

from repro.device import PLATFORMS, CostModel, KernelWorkload, filter_round_cost, get_platform
from repro.device.costmodel import (
    centralized_resample_time,
    model_flops_per_particle,
    scattered_aos_efficiency,
    sequential_round_time,
)


def test_platform_registry_matches_table3():
    assert len(PLATFORMS) == 6
    assert get_platform("GTX-580").n_sm == 16
    assert get_platform("hd-7970").mem_bandwidth_gbs == 264.0
    assert get_platform("2x-e5-2650").device_type == "cpu"
    with pytest.raises(ValueError):
        get_platform("rtx-4090")


def test_device_spec_validation():
    with pytest.raises(ValueError):
        get_platform("gtx-580").with_(n_sm=0)
    with pytest.raises(ValueError):
        get_platform("gtx-580").with_(device_type="tpu")


def test_utilization_saturates():
    cm = CostModel(get_platform("gtx-580"))
    assert cm.utilization(1, 32) < 0.05
    assert cm.utilization(1024, 512) == 1.0


def test_kernel_time_scales_with_work():
    cm = CostModel(get_platform("gtx-580"))
    small = KernelWorkload(name="k", n_groups=1024, group_size=512, flops=1e8)
    large = KernelWorkload(name="k", n_groups=1024, group_size=512, flops=1e9)
    assert cm.kernel_time(large) > cm.kernel_time(small) * 5


def test_coalescing_penalty():
    cm = CostModel(get_platform("gtx-580"))
    good = KernelWorkload(name="k", n_groups=1024, group_size=512, bytes_read=1e8, read_coalescing=1.0)
    bad = KernelWorkload(name="k", n_groups=1024, group_size=512, bytes_read=1e8, read_coalescing=0.25)
    assert cm.kernel_time(bad) > 3 * cm.kernel_time(good)


def test_scattered_aos_efficiency_grows_with_struct():
    assert scattered_aos_efficiency(36) < scattered_aos_efficiency(192)
    assert scattered_aos_efficiency(128) == 1.0
    assert scattered_aos_efficiency(0) == 1.0


def test_model_flops_grow_with_dimension():
    assert model_flops_per_particle(48) > model_flops_per_particle(9) > 0


class TestFig3Shapes:
    """The headline performance claims of Section VII-C / Fig. 3."""

    def hz(self, platform, total):
        dev = get_platform(platform)
        m = 64 if dev.device_type == "cpu" else 512
        return filter_round_cost(dev, m, max(total // m, 1), 9).update_rate_hz

    def test_few_hundred_hz_at_one_million_on_gpus(self):
        for gpu in ("gtx-580", "gtx-680", "hd-7970"):
            assert 100 <= self.hz(gpu, 1 << 20) <= 1000

    def test_dual_cpu_about_6x_sequential(self):
        total = 1 << 20
        seq = 1.0 / sequential_round_time(get_platform("i7-2820qm"), total, 9)
        dual = self.hz("2x-e5-2650", total)
        assert 3.0 < dual / seq < 12.0  # paper: "up to 6.5x"

    def test_high_end_gpu_several_times_dual_cpu(self):
        total = 1 << 20
        assert 3.0 < self.hz("hd-7970", total) / self.hz("2x-e5-2650", total) < 15.0

    def test_radeons_behind_at_small_sizes(self):
        # "The Radeon HD GPGPUs stay behind even more for very small filters"
        small = 1024
        assert self.hz("hd-6970", small) < self.hz("gtx-580", small)
        assert self.hz("hd-6970", small) < self.hz("i7-2820qm", small)

    def test_radeons_beat_cpus_at_medium_sizes(self):
        med = 1 << 16
        assert self.hz("hd-6970", med) > self.hz("2x-e5-2650", med)

    def test_hd7970_wins_at_millions(self):
        big = 1 << 21
        rates = {p: self.hz(p, big) for p in PLATFORMS}
        assert max(rates, key=rates.get) == "hd-7970"

    def test_rate_decreases_with_population(self):
        rates = [self.hz("gtx-580", 1 << k) for k in range(12, 23, 2)]
        assert all(a > b for a, b in zip(rates, rates[1:]))


class TestFig4Shapes:
    def test_4a_sort_resample_grow_with_m(self):
        dev = get_platform("gtx-580")
        f16 = filter_round_cost(dev, 16, 1024, 9).fractions()
        f1024 = filter_round_cost(dev, 1024, 1024, 9).fractions()
        assert f1024["sort"] + f1024["resample"] > f16["sort"] + f16["resample"]
        # Non-local stages shrink.
        assert f1024["estimate"] + f1024["exchange"] < f16["estimate"] + f16["exchange"]

    def test_4b_local_ops_dominate_at_large_n(self):
        dev = get_platform("gtx-580")
        f = filter_round_cost(dev, 512, 8192, 9).fractions()
        assert f["estimate"] + f["exchange"] < 0.05
        # Settling down: fractions at 4K and 8K nearly equal.
        f4k = filter_round_cost(dev, 512, 4096, 9).fractions()
        for k in f:
            assert abs(f[k] - f4k[k]) < 0.02

    def test_4b_time_linear_once_saturated(self):
        dev = get_platform("gtx-580")
        t4k = filter_round_cost(dev, 512, 4096, 9).total_seconds
        t8k = filter_round_cost(dev, 512, 8192, 9).total_seconds
        assert 1.8 < t8k / t4k < 2.2

    def test_4c_sampling_dominates_high_dimensions(self):
        dev = get_platform("gtx-580")
        f8 = filter_round_cost(dev, 512, 1024, 8).fractions()
        f48 = filter_round_cost(dev, 512, 1024, 48).fractions()
        assert f48["sampling"] > f8["sampling"]
        assert f48["sampling"] > 0.55  # paper: ~75%; we ask for clear dominance
        assert f48["sort"] < f8["sort"]

    def test_cpu_spends_more_on_rand(self):
        # Paper: the CPU spends far more time on random numbers (MTGP mismatch).
        cpu = filter_round_cost(get_platform("2x-e5-2650"), 64, 1024, 9).fractions()
        gpu = filter_round_cost(get_platform("gtx-580"), 512, 1024, 9).fractions()
        assert cpu["rand"] > 2 * gpu["rand"]


class TestFig5Shapes:
    def test_centralized_vose_much_faster_than_rws(self):
        dev = get_platform("i7-2820qm")
        n = 1 << 22
        assert centralized_resample_time(dev, n, "vose") < 0.5 * centralized_resample_time(dev, n, "rws")

    def test_parallel_vose_never_faster_on_subfilters(self):
        # "for all platforms running OpenCL code, resampling with Vose's is
        # never faster" at sub-filter size 512.
        for p in ("gtx-680", "hd-7970", "i7-2820qm"):
            dev = get_platform(p)
            for N in (64, 1024, 4096):
                rws = filter_round_cost(dev, 512, N, 9, resampler="rws").seconds["resample"]
                vose = filter_round_cost(dev, 512, N, 9, resampler="vose").seconds["resample"]
                assert vose >= 0.95 * rws

    def test_unknown_resampler_rejected(self):
        with pytest.raises(ValueError):
            filter_round_cost(get_platform("gtx-580"), 512, 64, 9, resampler="magic")
        with pytest.raises(ValueError):
            centralized_resample_time(get_platform("gtx-580"), 100, "magic")


def test_opencl_overhead_knob():
    dev = get_platform("gtx-580")
    cuda = filter_round_cost(dev, 512, 1024, 9).total_seconds
    opencl = filter_round_cost(dev.with_(runtime_overhead=1.05), 512, 1024, 9).total_seconds
    assert 1.04 < opencl / cuda < 1.06  # paper: OpenCL at most 5% slower


def test_exchange_schemes_costed():
    dev = get_platform("gtx-580")
    for scheme in ("ring", "torus", "all-to-all", "none"):
        c = filter_round_cost(dev, 512, 256, 9, scheme=scheme)
        assert c.total_seconds > 0
    none = filter_round_cost(dev, 512, 256, 9, scheme="none").seconds["exchange"]
    assert none == 0.0
    ring = filter_round_cost(dev, 512, 256, 9, scheme="ring").seconds["exchange"]
    torus = filter_round_cost(dev, 512, 256, 9, scheme="torus", n_exchange=1).seconds["exchange"]
    # Degree 4 moves more data than degree 2, but better occupancy can hide
    # it; the cost must at least never be lower.
    assert torus >= ring > 0
