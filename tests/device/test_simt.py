"""Tests for the SIMT work-group interpreter and kernel launcher."""

import numpy as np
import pytest

from repro.device import Kernel, WorkGroup, launch_kernel


def test_lane_vector_and_barrier_counting():
    wg = WorkGroup(32)
    assert wg.lane.shape == (32,)
    wg.barrier()
    wg.barrier()
    assert wg.stats.barriers == 2


def test_select_divergence_tracking():
    wg = WorkGroup(8)
    out = wg.select(wg.lane < 4, wg.lane, -wg.lane)
    np.testing.assert_array_equal(out, [0, 1, 2, 3, -4, -5, -6, -7])
    assert wg.stats.divergent_selects == 1
    wg.select(wg.lane >= 0, wg.lane, wg.lane)
    assert wg.stats.uniform_selects == 1


def test_local_array_conflicts_flow_into_stats():
    wg = WorkGroup(32)
    mem = wg.local_array(2048)
    mem.gather(np.arange(32) * 32)
    wg.barrier()
    assert wg.stats.local_conflicted == 1
    assert wg.stats.local_access_cycles == 32


def test_atomic_add_scalar_tickets():
    wg = WorkGroup(16)
    counters = wg.local_array(1, dtype=np.int64)
    cond = wg.lane % 2 == 0  # 8 participants
    tickets = wg.atomic_add_scalar(counters, 0, cond)
    assert counters[0] == 8
    assert sorted(tickets[cond].tolist()) == list(range(8))
    assert (tickets[~cond] == -1).all()
    assert wg.stats.atomic_ops == 8


def test_op_billing():
    wg = WorkGroup(64)
    wg.op(3)
    assert wg.stats.lane_ops == 192


def test_launch_kernel_runs_all_groups():
    def body(wg, mems, gid):
        data = mems["x"]
        idx = gid * wg.size + wg.lane
        vals = data.read(idx)
        data.write(idx, vals + gid)
        wg.barrier()

    x = np.zeros(128, dtype=np.float32)
    arrays, result = launch_kernel(Kernel("add_gid", body), n_groups=4, group_size=32, global_arrays={"x": x})
    out = arrays["x"]
    for g in range(4):
        np.testing.assert_array_equal(out[g * 32 : (g + 1) * 32], g)
    assert result.stats.barriers == 4
    assert result.global_read_transactions == 4  # one coalesced read per group
    assert result.global_bytes_read == 128 * 4


def test_launch_kernel_validation():
    with pytest.raises((ValueError, TypeError)):
        launch_kernel(Kernel("nop", lambda wg, m, g: None), n_groups=0, group_size=32, global_arrays={})
