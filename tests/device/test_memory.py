"""Tests for the coalescing and bank-conflict memory models."""

import numpy as np

from repro.device import GlobalMemory, LocalMemory, coalesced_transactions
from repro.device.memory import bank_conflict_factor


class TestCoalescing:
    def test_contiguous_floats_one_transaction(self):
        # 32 consecutive float32s = 128 bytes = exactly one segment.
        assert coalesced_transactions(np.arange(32), itemsize=4) == 1

    def test_contiguous_doubles_two_transactions(self):
        assert coalesced_transactions(np.arange(32), itemsize=8) == 2

    def test_strided_access_explodes(self):
        # Stride-32 float32 accesses: every lane its own segment.
        assert coalesced_transactions(np.arange(32) * 32, itemsize=4) == 32

    def test_broadcast_is_one_transaction(self):
        assert coalesced_transactions(np.zeros(32, dtype=int), itemsize=4) == 1

    def test_empty(self):
        assert coalesced_transactions(np.array([]), itemsize=4) == 0


class TestBankConflicts:
    def test_unit_stride_no_conflict(self):
        assert bank_conflict_factor(np.arange(32)) == 1

    def test_stride_two_is_two_way(self):
        assert bank_conflict_factor(np.arange(32) * 2) == 2

    def test_stride_32_full_serialization(self):
        assert bank_conflict_factor(np.arange(32) * 32) == 32

    def test_same_word_broadcast_free(self):
        assert bank_conflict_factor(np.zeros(32, dtype=int)) == 1

    def test_odd_stride_conflict_free(self):
        # The classic trick: padding to an odd stride removes conflicts.
        assert bank_conflict_factor(np.arange(32) * 33) == 1


class TestGlobalMemory:
    def test_read_counts_and_values(self):
        g = GlobalMemory(np.arange(100, dtype=np.float32))
        out = g.read(np.arange(32))
        np.testing.assert_array_equal(out, np.arange(32))
        assert g.read_transactions == 1
        assert g.bytes_read == 128

    def test_scattered_read_costs_more(self):
        base = np.arange(4096, dtype=np.float32)
        contiguous = GlobalMemory(base.copy())
        contiguous.read(np.arange(64))
        scattered = GlobalMemory(base.copy())
        scattered.read(np.arange(64) * 64)
        assert scattered.read_transactions > contiguous.read_transactions

    def test_write(self):
        g = GlobalMemory(np.zeros(64, dtype=np.float32))
        g.write(np.arange(32), np.ones(32, dtype=np.float32))
        assert g.data[:32].sum() == 32
        assert g.write_transactions == 1


class TestLocalMemory:
    def test_gather_scatter_roundtrip(self):
        mem = LocalMemory(16)
        mem.scatter(np.arange(16), np.arange(16.0))
        np.testing.assert_array_equal(mem.gather(np.arange(16)), np.arange(16.0))
        assert mem.conflicted_accesses == 0

    def test_conflicts_recorded(self):
        mem = LocalMemory(1024)
        mem.gather(np.arange(32) * 32)  # 32-way conflict
        assert mem.conflicted_accesses == 1
        assert mem.access_cycles == 32
        assert mem.conflict_rate == 1.0

    def test_plain_indexing_not_billed(self):
        mem = LocalMemory(8)
        mem[3] = 5.0
        assert mem[3] == 5.0
        assert mem.accesses == 0
