"""Tests for the fully-on-device SIMT filtering pipeline."""

import numpy as np
import pytest

from repro.device.pipeline import ScalarDeviceModel, SimtDistributedFilter


def simulate_truth(T=40, seed=0):
    rng = np.random.default_rng(seed)
    x = 0.5
    xs, zs = [], []
    for _ in range(T):
        x = 0.9 * x + 0.2 * rng.normal()
        xs.append(x)
        zs.append(x + 0.1 * rng.normal())
    return np.array(xs), np.array(zs)


def test_validation():
    with pytest.raises(ValueError):
        SimtDistributedFilter(ScalarDeviceModel(), n_particles=20, n_filters=4)  # not pow2
    with pytest.raises((ValueError, TypeError)):
        SimtDistributedFilter(ScalarDeviceModel(), n_particles=16, n_filters=0)


def test_tracks_ar1_model():
    xs, zs = simulate_truth()
    pf = SimtDistributedFilter(ScalarDeviceModel(), n_particles=32, n_filters=8, seed=1)
    pf.initialize()
    errs = [abs(pf.step(z) - x) for x, z in zip(xs, zs)]
    # Tracking within ~2x the measurement noise after burn-in.
    assert np.mean(errs[10:]) < 0.2


def test_weights_reset_after_resampling():
    pf = SimtDistributedFilter(ScalarDeviceModel(), n_particles=16, n_filters=4, seed=2)
    pf.initialize()
    pf.step(0.3)
    np.testing.assert_array_equal(pf.weights, 1.0)
    assert pf.states.shape == (64,)
    assert np.isfinite(pf.states).all()


def test_host_only_sees_measurement_and_estimate():
    # The step() signature is the whole host<->device contract: a scalar in,
    # a scalar out; the stats record everything else stayed in global memory.
    pf = SimtDistributedFilter(ScalarDeviceModel(), n_particles=16, n_filters=4, seed=3)
    pf.initialize()
    est = pf.step(0.1)
    assert np.isscalar(est) or isinstance(est, float)
    stats = pf.last_stats
    assert set(stats.launches) == {"sampling", "sort", "estimate", "exchange", "resample"}
    assert stats.total_global_bytes > 0
    assert stats.total_barriers > 0


def test_sort_kernel_orders_each_group():
    pf = SimtDistributedFilter(ScalarDeviceModel(), n_particles=16, n_filters=4, seed=4)
    pf.initialize()
    pf.step(0.0)
    # After the step weights are reset, but the sort stats must show the
    # bitonic network ran: log2(16)*(log2(16)+1)/2 = 10 stages per group.
    sort = pf.last_stats.launches["sort"]
    assert sort.stats.barriers >= 4 * 10  # 4 groups x 10 network stages


def test_exchange_moves_best_particle_to_neighbours():
    pf = SimtDistributedFilter(ScalarDeviceModel(sigma_q=1e-6, sigma_r=0.05), n_particles=16, n_filters=4, seed=5)
    pf.initialize()
    # Plant a uniquely good particle in group 2 and step with z at its value.
    pf.states[:] = 10.0
    pf.states[2 * 16] = 0.0
    est = pf.step(0.0)
    assert abs(est) < 0.5  # the estimate found the planted particle
    # Ring neighbours of group 2 (groups 1 and 3) must now hold copies.
    groups = pf.states.reshape(4, 16)
    assert np.abs(groups[1]).min() < 1.0
    assert np.abs(groups[3]).min() < 1.0


def test_estimate_matches_global_best_weight():
    pf = SimtDistributedFilter(ScalarDeviceModel(sigma_r=0.02), n_particles=32, n_filters=8, seed=6)
    pf.initialize()
    z = 0.37
    est = pf.step(z)
    # With a sharp likelihood the max-weight estimate must sit near z.
    assert abs(est - z) < 0.25
