"""Tests for linear-Gaussian, UNGM and bearings-only models plus trajectories."""

import numpy as np
import pytest

from repro.models import (
    BearingsOnlyModel,
    GroundTruth,
    LinearGaussianModel,
    UNGMModel,
    circle,
    lemniscate,
    random_waypoints,
    straight_line,
)
from repro.prng import make_rng


def simple_lg():
    return LinearGaussianModel(
        A=[[1.0, 0.1], [0.0, 1.0]],
        C=[[1.0, 0.0]],
        Q=np.diag([0.01, 0.01]),
        R=[[0.04]],
        x0_mean=[0.0, 1.0],
        x0_cov=np.eye(2) * 0.5,
    )


class TestLinearGaussian:
    def test_shapes(self):
        m = simple_lg()
        assert (m.state_dim, m.measurement_dim) == (2, 1)
        pts = m.initial_particles(100, make_rng("numpy", seed=0))
        assert pts.shape == (100, 2)

    def test_transition_mean(self):
        m = simple_lg()
        x = np.tile([1.0, 2.0], (50_000, 1))
        y = m.transition(x, None, 0, make_rng("numpy", seed=1))
        np.testing.assert_allclose(y.mean(axis=0), [1.2, 2.0], atol=0.01)

    def test_log_likelihood_quadratic(self):
        m = simple_lg()
        states = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        ll = m.log_likelihood(states, np.array([0.0]), 0)
        # -0.5 * x^2 / R
        np.testing.assert_allclose(ll, [-0.0, -12.5, -50.0])

    def test_simulate(self):
        gt = simple_lg().simulate(20, make_rng("numpy", seed=2))
        assert isinstance(gt, GroundTruth)
        assert gt.states.shape == (20, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearGaussianModel(A=[[1.0, 0.0]], C=[[1.0]], Q=[[1.0]], R=[[1.0]])


class TestUNGM:
    def test_known_drift(self):
        m = UNGMModel(sigma_w=1e-9)
        x = np.array([[1.0]])
        y = m.transition(x, None, 0, make_rng("numpy", seed=0))
        expected = 0.5 + 25.0 / 2.0 + 8.0 * np.cos(0.0)
        np.testing.assert_allclose(y, [[expected]], atol=1e-6)

    def test_likelihood_is_sign_symmetric(self):
        m = UNGMModel()
        z = np.array([1.25])
        ll = m.log_likelihood(np.array([[5.0], [-5.0]]), z, 0)
        assert ll[0] == pytest.approx(ll[1])

    def test_simulate_finite(self):
        gt = UNGMModel().simulate(100, make_rng("numpy", seed=1))
        assert np.isfinite(gt.states).all()
        assert np.abs(gt.states).max() < 60  # UNGM stays bounded in practice

    def test_validation(self):
        with pytest.raises(ValueError):
            UNGMModel(sigma_w=0.0)


class TestBearingsOnly:
    def test_bearing_geometry(self):
        m = BearingsOnlyModel(sensors=np.array([[0.0, 0.0]]))
        state = np.array([1.0, 1.0, 0.0, 0.0])
        z = m.observe(state, 0, make_rng("numpy", seed=0))
        assert abs(z[0] - np.pi / 4) < 0.1

    def test_angle_wrapping_in_likelihood(self):
        m = BearingsOnlyModel(sensors=np.array([[0.0, 0.0]]), sigma_bearing=0.05)
        # Target just above vs below the -x axis: bearings +-pi, residual must wrap.
        state = np.array([[-1.0, 1e-6, 0, 0]])
        z = np.array([-np.pi + 1e-6])
        ll = m.log_likelihood(state, z, 0)
        assert ll[0] > -1.0  # tiny wrapped residual, not (2 pi / sigma)^2

    def test_error_metric_uses_position(self):
        m = BearingsOnlyModel()
        a = np.array([1.0, 2.0, 9.0, 9.0])
        b = np.array([4.0, 6.0, 0.0, 0.0])
        assert m.estimate_error(a, b) == pytest.approx(5.0)

    def test_sensor_shape_validation(self):
        with pytest.raises(ValueError):
            BearingsOnlyModel(sensors=np.zeros((2, 3)))


class TestTrajectories:
    @pytest.mark.parametrize(
        "gen", [lemniscate, circle, straight_line, lambda n, h_s: random_waypoints(n, h_s, seed=1)]
    )
    def test_shapes(self, gen):
        pos, vel = gen(100, 0.1)
        assert pos.shape == (100, 2) and vel.shape == (100, 2)
        assert np.isfinite(pos).all() and np.isfinite(vel).all()

    def test_lemniscate_starts_right_heading_up(self):
        pos, vel = lemniscate(10, h_s=0.1, scale=1.0)
        assert pos[0, 0] > 0.4  # right side
        assert vel[0, 1] > 0  # heading up

    def test_lemniscate_is_figure_eight(self):
        pos, _ = lemniscate(400, h_s=0.1, period=20.0)
        # Crosses the center: x takes both signs, y takes both signs.
        assert pos[:, 0].min() < -0.5 and pos[:, 0].max() > 0.5
        assert pos[:, 1].min() < -0.1 and pos[:, 1].max() > 0.1

    def test_circle_radius(self):
        pos, _ = circle(100, h_s=0.1, radius=2.0)
        np.testing.assert_allclose(np.linalg.norm(pos, axis=1), 2.0, atol=1e-9)

    def test_straight_line_constant_velocity(self):
        pos, vel = straight_line(50, h_s=0.1, velocity=(0.3, -0.1))
        np.testing.assert_allclose(vel, np.tile([0.3, -0.1], (50, 1)))
        np.testing.assert_allclose(pos[10] - pos[0], [0.3, -0.1], atol=1e-12)


def test_ground_truth_validation():
    with pytest.raises(ValueError):
        GroundTruth(states=np.zeros((5, 2)), measurements=np.zeros((4, 1)))
