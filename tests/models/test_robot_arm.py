"""Tests for the robotic-arm tracking model."""

import numpy as np
import pytest

from repro.models import RobotArmModel, RobotArmParams, lemniscate, simulate_arm_tracking
from repro.prng import make_rng


def test_dimensions_follow_table2():
    m = RobotArmModel()
    assert m.n_joints == 5
    assert m.state_dim == 9  # joints + 4, Table II
    assert m.measurement_dim == 7
    assert m.control_dim == 5


@pytest.mark.parametrize("K", [1, 2, 8, 44])
def test_dimension_scaling(K):
    m = RobotArmModel(RobotArmParams(n_joints=K))
    assert m.state_dim == K + 4
    assert m.measurement_dim == K + 2


def test_param_validation():
    with pytest.raises(ValueError):
        RobotArmParams(n_joints=0)
    with pytest.raises(ValueError):
        RobotArmParams(sigma_camera=-1.0)


def test_initial_particles_shape_and_spread():
    m = RobotArmModel()
    pts = m.initial_particles(500, make_rng("numpy", seed=0))
    assert pts.shape == (500, 9)
    center = pts.mean(axis=0)
    np.testing.assert_allclose(center, m.initial_mean(), atol=0.1)
    assert pts.std(axis=0).min() > 0.05


def test_transition_moves_mean_by_control():
    m = RobotArmModel()
    x = np.tile(m.initial_mean(), (20_000, 1))
    u = np.full(5, 1.0)
    y = m.transition(x, u, 0, make_rng("numpy", seed=1))
    # Joint means advance by h_s * u = 0.1.
    np.testing.assert_allclose(y[:, :5].mean(axis=0) - x[:, :5].mean(axis=0), 0.1, atol=0.01)


def test_transition_double_integrator_object():
    m = RobotArmModel()
    x = np.tile(m.initial_mean(), (20_000, 1))
    x[:, 7:9] = [0.5, -0.2]  # velocity
    y = m.transition(x, None, 0, make_rng("numpy", seed=2))
    np.testing.assert_allclose((y[:, 5:7] - x[:, 5:7]).mean(axis=0), [0.05, -0.02], atol=0.01)


def test_transition_preserves_batch_shape_and_dtype():
    m = RobotArmModel()
    x = np.zeros((4, 8, 9), dtype=np.float32)
    y = m.transition(x, m.control_at(0), 3, make_rng("numpy", seed=3))
    assert y.shape == (4, 8, 9) and y.dtype == np.float32


def test_log_likelihood_peaks_at_truth():
    m = RobotArmModel()
    rng = make_rng("numpy", seed=4)
    truth = m.initial_mean() + 0.1
    z = m.measurement_mean(truth)  # noise-free measurement
    candidates = np.stack([truth, truth + 0.5, truth - 0.7])
    ll = m.log_likelihood(candidates, z, 0)
    assert ll.shape == (3,)
    assert ll[0] == max(ll)
    assert ll[0] == pytest.approx(0.0, abs=1e-9)


def test_observe_adds_noise_with_right_scale():
    m = RobotArmModel()
    rng = make_rng("numpy", seed=5)
    truth = m.initial_mean()
    zs = np.stack([m.observe(truth, 0, rng) for _ in range(4000)])
    resid = zs - m.measurement_mean(truth)
    np.testing.assert_allclose(resid.std(axis=0), 0.1, atol=0.02)


def test_control_is_deterministic_and_bounded():
    m = RobotArmModel()
    u1, u2 = m.control_at(7), m.control_at(7)
    np.testing.assert_array_equal(u1, u2)
    assert np.abs(u1).max() <= m.params.control_amplitude + 1e-12


def test_estimate_error_uses_object_position():
    m = RobotArmModel()
    a = m.initial_mean()
    b = a.copy()
    b[:5] += 10.0  # joint error must not count
    assert m.estimate_error(a, b) == 0.0
    b = a.copy()
    b[5] += 3.0
    b[6] += 4.0
    assert m.estimate_error(a, b) == pytest.approx(5.0)


def test_simulate_arm_tracking_pins_object_to_path():
    m = RobotArmModel()
    pos, vel = lemniscate(50, h_s=m.params.h_s)
    gt = simulate_arm_tracking(m, pos, vel, make_rng("numpy", seed=6))
    assert gt.n_steps == 50
    np.testing.assert_array_equal(gt.states[:, 5:7], pos)
    np.testing.assert_array_equal(gt.states[:, 7:9], vel)
    assert gt.measurements.shape == (50, 7)
    assert gt.controls.shape == (50, 5)
    # Joint sensors should track the true angles within a few sigma.
    assert np.abs(gt.measurements[:, :5] - gt.states[:, :5]).max() < 0.6


def test_simulate_arm_tracking_shape_validation():
    m = RobotArmModel()
    with pytest.raises(ValueError):
        simulate_arm_tracking(m, np.zeros((10, 2)), np.zeros((9, 2)), make_rng("numpy", seed=0))


def test_self_consistent_simulate():
    m = RobotArmModel()
    gt = m.simulate(30, make_rng("numpy", seed=7))
    assert gt.states.shape == (30, 9)
    assert np.isfinite(gt.states).all() and np.isfinite(gt.measurements).all()
