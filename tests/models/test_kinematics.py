"""Geometric tests for the arm forward kinematics and camera projection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import forward_kinematics, rot_y, rot_z
from repro.models.kinematics import camera_projection


def test_rotation_matrices_are_orthonormal():
    theta = np.linspace(-np.pi, np.pi, 7)
    for R in (rot_z(theta), rot_y(theta)):
        eye = np.einsum("...ij,...kj->...ik", R, R)
        np.testing.assert_allclose(eye, np.broadcast_to(np.eye(3), R.shape), atol=1e-12)
        np.testing.assert_allclose(np.linalg.det(R), 1.0, atol=1e-12)


def test_rot_z_rotates_x_to_y():
    R = rot_z(np.pi / 2)
    np.testing.assert_allclose(R @ [1, 0, 0], [0, 1, 0], atol=1e-12)


def test_rot_y_rotates_x_to_minus_z():
    R = rot_y(np.pi / 2)
    np.testing.assert_allclose(R @ [1, 0, 0], [0, 0, -1], atol=1e-12)


def test_straight_arm_extends_along_x():
    angles = np.zeros(4)
    links = np.full(4, 0.25)
    p, R = forward_kinematics(angles, links)
    np.testing.assert_allclose(p, [1.0, 0, 0], atol=1e-12)
    np.testing.assert_allclose(R, np.eye(3), atol=1e-12)


def test_base_yaw_rotates_whole_arm():
    angles = np.array([np.pi / 2, 0, 0])
    p, _ = forward_kinematics(angles, np.full(3, 1 / 3))
    np.testing.assert_allclose(p, [0, 1.0, 0], atol=1e-12)


def test_pitch_folds_arm_up():
    # One pitch joint at -90 degrees lifts the following links to +z.
    angles = np.array([0.0, -np.pi / 2])
    p, _ = forward_kinematics(angles, np.array([0.5, 0.5]))
    np.testing.assert_allclose(p, [0.5, 0, 0.5], atol=1e-12)


def test_batched_matches_single():
    rng = np.random.default_rng(0)
    angles = rng.uniform(-np.pi, np.pi, size=(10, 5))
    links = np.full(5, 0.2)
    p_batch, R_batch = forward_kinematics(angles, links)
    for i in range(10):
        p, R = forward_kinematics(angles[i], links)
        np.testing.assert_allclose(p_batch[i], p, atol=1e-12)
        np.testing.assert_allclose(R_batch[i], R, atol=1e-12)


def test_link_length_mismatch():
    with pytest.raises(ValueError):
        forward_kinematics(np.zeros(3), np.ones(2))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=10_000))
def test_arm_reach_is_bounded_property(K, seed):
    angles = np.random.default_rng(seed).uniform(-np.pi, np.pi, size=K)
    links = np.full(K, 1.0 / K)
    p, R = forward_kinematics(angles, links)
    assert np.linalg.norm(p) <= 1.0 + 1e-9
    np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-9)


def test_camera_projection_object_on_axis():
    # Straight arm along x, object further along x: ray is purely on the
    # optical axis, so both camera-plane coordinates vanish.
    angles = np.zeros(3)
    links = np.full(3, 1 / 3)
    c = camera_projection(angles, links, np.array([2.0, 0.0]))
    np.testing.assert_allclose(c, [0.0, 0.0], atol=1e-12)


def test_camera_projection_lateral_object():
    # Object to the left of a straight arm appears at +y in the camera frame
    # and below the (z=arm height) plane stays at z=0 here.
    angles = np.zeros(2)
    links = np.full(2, 0.5)
    c = camera_projection(angles, links, np.array([1.0, 0.7]))
    np.testing.assert_allclose(c, [0.7, 0.0], atol=1e-12)


def test_camera_projection_depends_on_pose():
    links = np.full(3, 1 / 3)
    obj = np.array([0.4, 0.3])
    c1 = camera_projection(np.zeros(3), links, obj)
    c2 = camera_projection(np.array([0.3, -0.2, 0.1]), links, obj)
    assert not np.allclose(c1, c2)
