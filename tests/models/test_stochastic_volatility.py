"""Tests for the stochastic volatility model."""

import numpy as np
import pytest

from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_filter,
)
from repro.models import StochasticVolatilityModel
from repro.prng import make_rng


def test_parameter_validation():
    with pytest.raises(ValueError):
        StochasticVolatilityModel(phi=1.0)
    with pytest.raises(ValueError):
        StochasticVolatilityModel(sigma=0.0)


def test_stationary_prior_moments():
    m = StochasticVolatilityModel(mu=-1.0, phi=0.9, sigma=0.3)
    pts = m.initial_particles(100_000, make_rng("numpy", seed=0))
    assert abs(pts.mean() + 1.0) < 0.02
    assert abs(pts.std() - 0.3 / np.sqrt(1 - 0.81)) < 0.02


def test_transition_mean_reversion():
    m = StochasticVolatilityModel(mu=0.0, phi=0.5, sigma=1e-9)
    x = np.array([[4.0]])
    y = m.transition(x, None, 0, make_rng("numpy", seed=1))
    assert y[0, 0] == pytest.approx(2.0, abs=1e-6)


def test_log_likelihood_shape_and_peak():
    m = StochasticVolatilityModel()
    z = np.array([1.0])
    # For |z| = 1 the likelihood in x peaks at x = log(z^2) = 0.
    xs = np.array([[-2.0], [0.0], [2.0]])
    ll = m.log_likelihood(xs, z, 0)
    assert ll.shape == (3,)
    assert np.argmax(ll) == 1


def test_simulation_volatility_clusters():
    m = StochasticVolatilityModel(phi=0.98, sigma=0.2)
    gt = m.simulate(400, make_rng("numpy", seed=2))
    assert np.isfinite(gt.states).all() and np.isfinite(gt.measurements).all()
    # Squared returns must correlate with the latent volatility exp(x).
    corr = np.corrcoef(np.exp(gt.states[:, 0]), gt.measurements[:, 0] ** 2)[0, 1]
    assert corr > 0.15


def test_centralized_filter_recovers_volatility():
    m = StochasticVolatilityModel()
    gt = m.simulate(150, make_rng("numpy", seed=3))
    pf = CentralizedParticleFilter(m, CentralizedFilterConfig(n_particles=3000, estimator="weighted_mean", seed=4))
    run = run_filter(pf, m, gt)
    # Volatility is weakly identified per step; require meaningful tracking:
    # error well below the prior std and positive correlation with truth.
    assert run.mean_error(warmup=30) < m.x0_sigma
    corr = np.corrcoef(run.estimates[30:, 0], gt.states[30:, 0])[0, 1]
    assert corr > 0.4


def test_distributed_filter_matches_centralized():
    m = StochasticVolatilityModel()
    gt = m.simulate(100, make_rng("numpy", seed=5))
    cent = CentralizedParticleFilter(m, CentralizedFilterConfig(n_particles=1024, estimator="weighted_mean", resampler="rws", seed=6))
    dist = DistributedParticleFilter(m, DistributedFilterConfig(n_particles=32, n_filters=32, estimator="weighted_mean", seed=6))
    e_c = run_filter(cent, m, gt).mean_error(warmup=20)
    e_d = run_filter(dist, m, gt).mean_error(warmup=20)
    assert e_d < 1.5 * e_c + 0.05
