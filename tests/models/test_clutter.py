"""Tests for the clutter/outlier tracking model."""

import numpy as np
import pytest

from repro.baselines import ExtendedKalmanFilter
from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_filter,
)
from repro.models import ClutterTrackingModel
from repro.prng import make_rng


def test_validation():
    with pytest.raises(ValueError):
        ClutterTrackingModel(p_clutter=1.0)
    with pytest.raises(ValueError):
        ClutterTrackingModel(arena_halfwidth=0.0)


def test_clutter_rate_in_observations():
    m = ClutterTrackingModel(p_clutter=0.3, sigma_meas=0.01)
    rng = make_rng("numpy", seed=0)
    state = np.array([0.0, 0.0, 0.0, 0.0])
    zs = np.stack([m.observe(state, 0, rng) for _ in range(4000)])
    outliers = np.linalg.norm(zs, axis=1) > 0.1  # far from the true position
    assert abs(outliers.mean() - 0.3) < 0.05


def test_mixture_likelihood_has_heavy_tail():
    m = ClutterTrackingModel(p_clutter=0.2, sigma_meas=0.05)
    z = np.array([0.0, 0.0])
    near = m.log_likelihood(np.array([[0.0, 0.0, 0, 0]]), z, 0)[0]
    far = m.log_likelihood(np.array([[2.0, 2.0, 0, 0]]), z, 0)[0]
    pure_gauss = -0.5 * 8.0 / 0.05**2  # what a Gaussian tail would give
    assert near > far  # still peaked at the truth
    assert far > pure_gauss + 100  # but the tail is far heavier than Gaussian


def test_zero_clutter_reduces_to_gaussian():
    m0 = ClutterTrackingModel(p_clutter=0.0)
    z = np.array([0.1, -0.2])
    states = np.random.default_rng(1).normal(size=(50, 4))
    ll = m0.log_likelihood(states, z, 0)
    dz = states[:, :2] - z
    expected = -0.5 * np.sum(dz * dz, axis=1) / m0.sigma_meas**2 - np.log(2 * np.pi) - 2 * np.log(m0.sigma_meas)
    np.testing.assert_allclose(ll, expected, atol=1e-9)


def test_particle_filter_robust_to_clutter():
    m = ClutterTrackingModel(p_clutter=0.25)
    truth = m.simulate(80, make_rng("numpy", seed=0))
    pf = CentralizedParticleFilter(m, CentralizedFilterConfig(n_particles=2000, estimator="weighted_mean", seed=1))
    assert run_filter(pf, m, truth).mean_error(warmup=20) < 0.12


def test_particle_filter_beats_naive_kalman_under_clutter():
    # The introduction's argument, quantified: a Gaussian filter is yanked
    # off-target by outliers; the PF's mixture likelihood shrugs them off.
    m = ClutterTrackingModel(p_clutter=0.25)
    truth = m.simulate(80, make_rng("numpy", seed=0))
    pf = CentralizedParticleFilter(m, CentralizedFilterConfig(n_particles=2000, estimator="weighted_mean", seed=1))
    pf_err = run_filter(pf, m, truth).mean_error(warmup=20)
    ekf = ExtendedKalmanFilter(
        f=lambda x, u, k: np.array([x[0] + m.h_s * x[2], x[1] + m.h_s * x[3], x[2], x[3]]),
        h=lambda x: x[:2],
        Q=np.diag([m.sigma_pos**2] * 2 + [m.sigma_vel**2] * 2),
        R=np.eye(2) * m.sigma_meas**2,
        x0_mean=m.x0_mean,
        x0_cov=np.eye(4) * m.x0_spread**2,
    )
    kf_err = run_filter(ekf, m, truth).mean_error(warmup=20)
    assert pf_err < 0.25 * kf_err


def test_distributed_filter_on_clutter_model():
    m = ClutterTrackingModel(p_clutter=0.2)
    truth = m.simulate(60, make_rng("numpy", seed=2))
    pf = DistributedParticleFilter(
        m, DistributedFilterConfig(n_particles=64, n_filters=16, estimator="weighted_mean", seed=3)
    )
    assert run_filter(pf, m, truth).mean_error(warmup=15) < 0.15
