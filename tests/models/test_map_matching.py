"""Tests for the vehicle map-matching model (related work [2])."""

import networkx as nx
import numpy as np
import pytest

from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import MapMatchingModel, grid_road_network, random_route
from repro.prng import make_rng


def test_grid_network_structure():
    g = grid_road_network(3, spacing=50.0)
    assert g.number_of_nodes() == 9
    assert g.number_of_edges() == 12
    pos = nx.get_node_attributes(g, "pos")
    xs = sorted({p[0] for p in pos.values()})
    assert xs == [0.0, 50.0, 100.0]


def test_random_route_is_connected_path():
    g = grid_road_network(4)
    route = random_route(g, 10, seed=1)
    assert len(route) == 11
    for a, b in zip(route, route[1:]):
        assert g.has_edge(a, b)


def test_model_validation():
    with pytest.raises(ValueError):
        MapMatchingModel(nx.empty_graph(3))
    g = grid_road_network(2)
    with pytest.raises(ValueError):
        MapMatchingModel(g, sigma_road=0.0)
    g2 = nx.path_graph(2)  # no pos attributes
    with pytest.raises(ValueError):
        MapMatchingModel(g2)


class TestRoadDistance:
    def setup_method(self):
        self.m = MapMatchingModel(grid_road_network(2, spacing=100.0))

    def test_on_road_is_zero(self):
        assert self.m.road_distance(np.array([50.0, 0.0])) == pytest.approx(0.0)

    def test_off_road_perpendicular(self):
        # Center of the 100x100 block: 50 m from every surrounding road.
        assert self.m.road_distance(np.array([50.0, 50.0])) == pytest.approx(50.0)

    def test_beyond_segment_end_uses_endpoint(self):
        d = self.m.road_distance(np.array([-30.0, -40.0]))
        assert d == pytest.approx(50.0)  # distance to corner (0,0)

    def test_batched_shapes(self):
        pts = np.zeros((4, 7, 2))
        assert self.m.road_distance(pts).shape == (4, 7)


def test_likelihood_prefers_on_road_particles():
    m = MapMatchingModel(grid_road_network(2, spacing=100.0), sigma_gps=30.0, sigma_road=5.0)
    z = np.array([50.0, 20.0])
    on_road = np.array([[50.0, 0.0, 0, 0]])  # 20 m from GPS but on a road
    off_road = np.array([[50.0, 20.0, 0, 0]])  # exactly at GPS, 20 m off-road
    ll_on = m.log_likelihood(on_road, z, 0)[0]
    ll_off = m.log_likelihood(off_road, z, 0)[0]
    assert ll_on > ll_off  # the road prior dominates at these scales


def test_simulate_route_follows_roads():
    g = grid_road_network(4, spacing=100.0)
    m = MapMatchingModel(g)
    route = random_route(g, 6, seed=3)
    truth = m.simulate_route(route, speed=10.0, n_steps=50, rng=make_rng("numpy", 0))
    assert truth.states.shape == (50, 4)
    d = m.road_distance(truth.states[:, :2])
    np.testing.assert_allclose(d, 0.0, atol=1e-6)  # the vehicle stays on roads
    speeds = np.linalg.norm(truth.states[:-1, 2:], axis=1)
    np.testing.assert_allclose(speeds, 10.0, atol=1e-6)


def test_map_prior_snaps_estimate_to_road():
    # The map-matching claim: with the road prior the cross-track error
    # collapses; without it the estimate floats with the GPS noise.
    g = grid_road_network(4, spacing=100.0)
    route = random_route(g, 8, seed=2)
    start = np.array(nx.get_node_attributes(g, "pos")[route[0]])
    cross = {}
    for label, sigma_road in (("map", 5.0), ("nomap", 1e6)):
        m = MapMatchingModel(
            g, sigma_gps=20.0, sigma_road=sigma_road,
            x0_mean=np.array([start[0], start[1], 0.0, 0.0]),
        )
        truth = m.simulate_route(route, speed=10.0, n_steps=60, rng=make_rng("numpy", 0))
        pf = DistributedParticleFilter(
            m, DistributedFilterConfig(n_particles=64, n_filters=16, estimator="weighted_mean", seed=1)
        )
        run = run_filter(pf, m, truth)
        cross[label] = float(np.mean([m.road_distance(e[:2]) for e in run.estimates[15:]]))
        assert np.isfinite(run.errors).all()
    assert cross["map"] < 0.5 * cross["nomap"]
    assert cross["map"] < 8.0
