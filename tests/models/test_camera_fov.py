"""Tests for the camera field-of-view / censored-measurement extension."""

import numpy as np
import pytest

from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import RobotArmModel, RobotArmParams, lemniscate, simulate_arm_tracking
from repro.prng import make_rng


def fov_model(fov=0.6):
    return RobotArmModel(RobotArmParams(camera_fov=fov))


def test_fov_validation():
    with pytest.raises(ValueError):
        RobotArmParams(camera_fov=0.0)
    with pytest.raises(ValueError):
        RobotArmParams(miss_probability=0.0)


def test_in_view_object_measured_normally():
    m = fov_model(fov=10.0)  # everything in view
    z = m.observe(m.initial_mean(), 0, make_rng("numpy", seed=0))
    assert np.isfinite(z).all()


def test_out_of_view_object_censored():
    m = fov_model(fov=0.1)
    state = m.initial_mean()
    state[5:7] = [-3.0, 4.0]  # far off the optical axis
    z = m.observe(state, 0, make_rng("numpy", seed=1))
    assert np.isnan(z[-2:]).all()  # camera censored
    assert np.isfinite(z[:5]).all()  # joint sensors still report


def test_censored_likelihood_prefers_consistent_particles():
    m = fov_model(fov=0.3)
    truth = m.initial_mean()
    truth[5:7] = [-2.0, 2.0]  # out of view
    z = m.observe(truth, 0, make_rng("numpy", seed=2))
    assert np.isnan(z[-2:]).all()
    # Particle A also predicts out-of-view; particle B predicts in view.
    a = truth.copy()
    b = truth.copy()
    b[5:7] = [0.6, 0.0]  # roughly on the optical axis -> in view
    ll = m.log_likelihood(np.stack([a, b]), z, 0)
    assert ll[0] > ll[1] + 3.0  # the miss-probability penalty bites


def test_unlimited_fov_never_censors():
    m = RobotArmModel()  # paper default: no FOV
    state = m.initial_mean()
    state[5:7] = [50.0, 50.0]
    z = m.observe(state, 0, make_rng("numpy", seed=3))
    assert np.isfinite(z).all()


def test_filter_survives_occlusion_and_reacquires():
    # A lemniscate bigger than the FOV: the object repeatedly leaves view.
    m = fov_model(fov=0.8)
    pos, vel = lemniscate(120, h_s=m.params.h_s, scale=1.4, center=(0.6, 0.0))
    truth = simulate_arm_tracking(m, pos, vel, make_rng("numpy", seed=4))
    censored_steps = int(np.isnan(truth.measurements[:, -1]).sum())
    assert censored_steps > 10  # the occlusion actually happens
    pf = DistributedParticleFilter(
        m, DistributedFilterConfig(n_particles=64, n_filters=32, estimator="weighted_mean", seed=5)
    )
    run = run_filter(pf, m, truth)
    assert np.isfinite(run.errors).all()  # no NaNs leak into the filter
    # During occlusion the error may grow, but detection steps re-acquire:
    # average error over detected steps stays bounded.
    detected = ~np.isnan(truth.measurements[:, -1])
    assert run.errors[detected][20:].mean() < 0.6


def test_occlusion_degrades_but_not_destroys_accuracy():
    m_free = RobotArmModel()
    m_fov = fov_model(fov=0.8)
    pos, vel = lemniscate(100, h_s=0.1, scale=1.4, center=(0.6, 0.0))
    errs = {}
    for label, model in (("free", m_free), ("fov", m_fov)):
        acc = []
        for r in range(3):
            truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", seed=100 + r))
            pf = DistributedParticleFilter(
                model, DistributedFilterConfig(n_particles=64, n_filters=32, estimator="weighted_mean", seed=r)
            )
            acc.append(run_filter(pf, model, truth).mean_error(warmup=20))
        errs[label] = float(np.mean(acc))
    assert errs["fov"] >= errs["free"] * 0.8  # censoring cannot help
    assert errs["fov"] < 1.2  # but tracking survives
