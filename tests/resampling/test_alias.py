"""Exactness tests for Vose alias-table constructions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prng import make_rng
from repro.resampling import (
    VoseAliasResampler,
    alias_sample,
    build_alias_table,
    build_alias_table_parallel,
)


def table_mass(prob, alias):
    """Implied probability of each index under the alias table."""
    n = prob.size
    mass = prob / n
    np.add.at(mass, alias, (1.0 - prob) / n)
    return mass


def assert_exact_table(w, prob, alias):
    n = w.size
    assert prob.shape == (n,) and alias.shape == (n,)
    assert np.all(prob >= -1e-12) and np.all(prob <= 1.0 + 1e-12)
    assert np.all((alias >= 0) & (alias < n))
    np.testing.assert_allclose(table_mass(prob, alias), w / w.sum(), atol=1e-9)


@pytest.mark.parametrize("builder", [build_alias_table, build_alias_table_parallel])
class TestAliasBuilders:
    def test_uniform_weights(self, builder):
        w = np.ones(16)
        prob, alias = builder(w)
        assert_exact_table(w, prob, alias)
        np.testing.assert_allclose(prob, 1.0)

    def test_random_weights(self, builder):
        w = np.random.default_rng(0).random(257) + 1e-6
        assert_exact_table(w, *builder(w))

    def test_degenerate_one_heavy(self, builder):
        # The paper's worst case for parallel construction: one particle
        # holds nearly all the weight, concurrency drops toward one.
        w = np.full(1024, 1e-9)
        w[137] = 1.0
        assert_exact_table(w, *builder(w))

    def test_two_heavy_tail(self, builder):
        w = np.full(512, 1e-6)
        w[0], w[-1] = 0.5, 0.5
        assert_exact_table(w, *builder(w))

    def test_single_element(self, builder):
        prob, alias = builder(np.array([3.0]))
        assert prob[0] == 1.0 and alias[0] == 0

    def test_rejects_bad_weights(self, builder):
        with pytest.raises(ValueError):
            builder(np.array([1.0, -0.5]))
        with pytest.raises(ValueError):
            builder(np.array([0.0, 0.0]))


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.floats(min_value=1e-9, max_value=1e3, allow_nan=False), min_size=1, max_size=200)
)
def test_parallel_build_mass_conservation_property(ws):
    w = np.asarray(ws)
    prob, alias = build_alias_table_parallel(w)
    assert_exact_table(w, prob, alias)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=100), st.integers(min_value=0, max_value=2**32 - 1))
def test_parallel_matches_sequential_distribution(n, seed):
    w = np.random.default_rng(seed).random(n) + 1e-9
    seq_mass = table_mass(*build_alias_table(w))
    par_mass = table_mass(*build_alias_table_parallel(w))
    np.testing.assert_allclose(seq_mass, par_mass, atol=1e-9)


def test_alias_sample_distribution():
    w = np.array([0.1, 0.2, 0.3, 0.4])
    prob, alias = build_alias_table(w)
    rng = make_rng("numpy", seed=1)
    u = rng.uniform((2, 200_000))
    idx = alias_sample(prob, alias, u[0], u[1])
    freq = np.bincount(idx, minlength=4) / idx.size
    np.testing.assert_allclose(freq, w, atol=0.01)


def test_alias_sample_rejects_2d_table():
    with pytest.raises(ValueError):
        alias_sample(np.ones((2, 2)), np.zeros((2, 2), dtype=int), np.zeros(2), np.zeros(2))


@pytest.mark.parametrize("parallel", [False, True])
def test_vose_resampler_distribution(parallel):
    w = np.array([0.05, 0.15, 0.5, 0.3])
    r = VoseAliasResampler(parallel_build=parallel)
    idx = r.resample(w, 100_000, make_rng("numpy", seed=2))
    freq = np.bincount(idx, minlength=4) / idx.size
    np.testing.assert_allclose(freq, w, atol=0.01)


def test_vose_batch_matches_rows():
    w = np.random.default_rng(3).random((5, 32)) + 1e-6
    r = VoseAliasResampler()
    idx = r.resample_batch(w, 50_000, make_rng("numpy", seed=4))
    assert idx.shape == (5, 50_000)
    for f in range(5):
        freq = np.bincount(idx[f], minlength=32) / idx.shape[1]
        np.testing.assert_allclose(freq, w[f] / w[f].sum(), atol=0.02)
