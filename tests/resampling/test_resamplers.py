"""Distributional and shape tests across all resamplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prng import make_rng
from repro.resampling import (
    MultinomialResampler,
    ResidualResampler,
    RouletteWheelResampler,
    StratifiedResampler,
    SystematicResampler,
    VoseAliasResampler,
    resample_counts,
    rws_indices,
    rws_indices_batch,
)

ALL = [
    MultinomialResampler(),
    RouletteWheelResampler(),
    VoseAliasResampler(),
    VoseAliasResampler(parallel_build=True),
    SystematicResampler(),
    StratifiedResampler(),
    ResidualResampler(),
]


@pytest.mark.parametrize("r", ALL, ids=lambda r: f"{r.name}{'_par' if getattr(r, 'parallel_build', False) else ''}")
class TestResamplerContract:
    def test_output_shape_and_range(self, r):
        w = np.random.default_rng(0).random(33) + 1e-9
        idx = r.resample(w, 77, make_rng("numpy", seed=0))
        assert idx.shape == (77,)
        assert idx.dtype == np.int64
        assert (idx >= 0).all() and (idx < 33).all()

    def test_distribution_matches_weights(self, r):
        w = np.array([0.02, 0.08, 0.2, 0.7])
        idx = r.resample(w, 150_000, make_rng("numpy", seed=1))
        freq = np.bincount(idx, minlength=4) / idx.size
        np.testing.assert_allclose(freq, w, atol=0.012)

    def test_zero_weight_never_selected(self, r):
        w = np.array([0.0, 1.0, 0.0, 2.0, 0.0])
        idx = r.resample(w, 20_000, make_rng("numpy", seed=2))
        assert not np.isin(idx, [0, 2, 4]).any()

    def test_point_mass(self, r):
        w = np.zeros(16)
        w[5] = 1.0
        idx = r.resample(w, 1000, make_rng("numpy", seed=3))
        assert (idx == 5).all()

    def test_unnormalized_ok(self, r):
        w = np.array([1.0, 3.0])
        idx = r.resample(w, 80_000, make_rng("numpy", seed=4))
        assert abs(np.mean(idx == 1) - 0.75) < 0.01

    def test_batch_shape(self, r):
        w = np.random.default_rng(5).random((6, 16)) + 1e-9
        idx = r.resample_batch(w, 24, make_rng("numpy", seed=5))
        assert idx.shape == (6, 24)
        assert (idx >= 0).all() and (idx < 16).all()

    def test_invalid_inputs(self, r):
        rng = make_rng("numpy", seed=0)
        with pytest.raises((ValueError, TypeError)):
            r.resample(np.array([-1.0, 2.0]), 4, rng)
        with pytest.raises((ValueError, TypeError)):
            r.resample(np.array([1.0, 2.0]), 0, rng)


def test_systematic_counts_are_minimum_variance():
    w = np.array([0.1, 0.4, 0.25, 0.25])
    n = 1000
    idx = SystematicResampler().resample(w, n, make_rng("numpy", seed=6))
    counts = resample_counts(idx, 4)
    expected = n * w
    assert np.all(counts >= np.floor(expected))
    assert np.all(counts <= np.ceil(expected))


def test_residual_keeps_integer_parts():
    w = np.array([0.5, 0.3, 0.2])
    idx = ResidualResampler().resample(w, 10, make_rng("numpy", seed=7))
    counts = resample_counts(idx, 3)
    assert counts[0] >= 5 and counts[1] >= 3 and counts[2] >= 2
    assert counts.sum() == 10


def test_rws_indices_direct():
    w = np.array([0.25, 0.25, 0.5])
    u = np.array([0.0, 0.24, 0.26, 0.49, 0.51, 0.99])
    np.testing.assert_array_equal(rws_indices(w, u), [0, 0, 1, 1, 2, 2])


def test_rws_batch_matches_single_rows():
    rng = np.random.default_rng(8)
    w = rng.random((7, 9)) + 1e-9
    u = rng.random((7, 13))
    batch = rws_indices_batch(w, u)
    for f in range(7):
        np.testing.assert_array_equal(batch[f], rws_indices(w[f], u[f]))


def test_rws_batch_row_mismatch():
    with pytest.raises(ValueError):
        rws_indices_batch(np.ones((2, 4)), np.ones((3, 4)))


def test_rws_batch_boundary_uniform():
    # u extremely close to 1 must clip into range.
    w = np.ones((2, 4))
    u = np.full((2, 3), np.nextafter(1.0, 0.0))
    idx = rws_indices_batch(w, u)
    assert (idx == 3).all()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=2**31),
)
def test_rws_batch_property(n_filters, m, seed):
    rng = np.random.default_rng(seed)
    w = rng.random((n_filters, m)) + 1e-9
    u = rng.random((n_filters, 2 * m))
    idx = rws_indices_batch(w, u)
    assert idx.shape == (n_filters, 2 * m)
    assert (idx >= 0).all() and (idx < m).all()
