"""Tests for effective sample size and resampling policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prng import make_rng
from repro.resampling import (
    AlwaysResample,
    ESSThresholdPolicy,
    RandomFrequencyPolicy,
    effective_sample_size,
)


def test_ess_uniform_equals_n():
    assert effective_sample_size(np.ones(40)) == pytest.approx(40.0)


def test_ess_point_mass_equals_one():
    w = np.zeros(40)
    w[3] = 5.0
    assert effective_sample_size(w) == pytest.approx(1.0)


def test_ess_batched_rows():
    w = np.stack([np.ones(8), np.concatenate([np.ones(1), np.zeros(7)])])
    ess = effective_sample_size(w, axis=1)
    np.testing.assert_allclose(ess, [8.0, 1.0])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=1, max_size=100))
def test_ess_bounds_property(ws):
    w = np.asarray(ws)
    ess = effective_sample_size(w)
    assert 1.0 - 1e-9 <= ess <= w.size + 1e-9


def test_always_policy():
    mask = AlwaysResample().should_resample(np.ones((5, 4)), make_rng("numpy", seed=0))
    assert mask.all() and mask.shape == (5,)


def test_ess_threshold_policy():
    degenerate = np.concatenate([np.ones(1), np.zeros(15)])
    w = np.stack([np.ones(16), degenerate])
    mask = ESSThresholdPolicy(ratio=0.5).should_resample(w, make_rng("numpy", seed=0))
    np.testing.assert_array_equal(mask, [False, True])


def test_ess_threshold_validation():
    with pytest.raises(ValueError):
        ESSThresholdPolicy(ratio=0.0)
    with pytest.raises(ValueError):
        ESSThresholdPolicy(ratio=1.5)


def test_random_frequency_policy_rates():
    rng = make_rng("numpy", seed=1)
    w = np.ones((10_000, 4))
    mask = RandomFrequencyPolicy(frequency=0.3).should_resample(w, rng)
    assert abs(mask.mean() - 0.3) < 0.02
    assert RandomFrequencyPolicy(frequency=1.0).should_resample(w, rng).all()
    assert not RandomFrequencyPolicy(frequency=0.0).should_resample(w, rng).any()


def test_random_frequency_validation():
    with pytest.raises(ValueError):
        RandomFrequencyPolicy(frequency=-0.1)
    with pytest.raises(ValueError):
        RandomFrequencyPolicy(frequency=1.1)
