"""Tests for effective sample size and resampling policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prng import make_rng
from repro.resampling import (
    AlwaysResample,
    ESSThresholdPolicy,
    RandomFrequencyPolicy,
    effective_sample_size,
)


def test_ess_uniform_equals_n():
    assert effective_sample_size(np.ones(40)) == pytest.approx(40.0)


def test_ess_point_mass_equals_one():
    w = np.zeros(40)
    w[3] = 5.0
    assert effective_sample_size(w) == pytest.approx(1.0)


def test_ess_batched_rows():
    w = np.stack([np.ones(8), np.concatenate([np.ones(1), np.zeros(7)])])
    ess = effective_sample_size(w, axis=1)
    np.testing.assert_allclose(ess, [8.0, 1.0])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=1, max_size=100))
def test_ess_bounds_property(ws):
    w = np.asarray(ws)
    ess = effective_sample_size(w)
    assert 1.0 - 1e-9 <= ess <= w.size + 1e-9


def test_always_policy():
    mask = AlwaysResample().should_resample(np.ones((5, 4)), make_rng("numpy", seed=0))
    assert mask.all() and mask.shape == (5,)


def test_ess_threshold_policy():
    degenerate = np.concatenate([np.ones(1), np.zeros(15)])
    w = np.stack([np.ones(16), degenerate])
    mask = ESSThresholdPolicy(ratio=0.5).should_resample(w, make_rng("numpy", seed=0))
    np.testing.assert_array_equal(mask, [False, True])


class TestESSThresholdLiveWidth:
    """Regression: the threshold must scale with each sub-filter's *live*
    width, not the padded capacity. A shrunken-but-diverse row under the
    width-aware layout (or a healed population whose masked slots carry zero
    weight) would otherwise resample every round."""

    def test_masked_padding_does_not_inflate_threshold(self):
        # Row 0: 4 live uniform particles in a capacity-16 row. Live ESS is
        # 4 == 1.0 * m_i, comfortably above 0.5 * 4 — healthy.
        w = np.zeros((2, 16))
        w[0, :4] = 1.0
        w[1, 0] = 1.0  # genuinely collapsed row: 1 live particle of 8
        w[1, 1] = 1e-9
        widths = np.array([4, 8])
        policy = ESSThresholdPolicy(ratio=0.5)
        mask = policy.should_resample(w, make_rng("numpy", seed=0), widths=widths)
        np.testing.assert_array_equal(mask, [False, True])

    def test_padded_capacity_would_wrongly_resample(self):
        # The bug being pinned: against the padded width (16) the same
        # healthy row falls below threshold (4 < 0.5 * 16) and churns.
        w = np.zeros((1, 16))
        w[0, :4] = 1.0
        policy = ESSThresholdPolicy(ratio=0.5)
        wrong = policy.should_resample(w, make_rng("numpy", seed=0))
        right = policy.should_resample(w, make_rng("numpy", seed=0),
                                       widths=np.array([4]))
        assert wrong[0] and not right[0]

    def test_healed_population_thresholds_on_live_width(self):
        # End-to-end: an adaptive run with ESS-gated resampling where rows
        # genuinely shrink below capacity must stay finite and keep the
        # live-width threshold semantics (no per-round churn of healthy
        # shrunken rows is observable as a stable, finite trace).
        from repro.core import DistributedFilterConfig, DistributedParticleFilter
        from repro.models import LinearGaussianModel

        model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
        config = DistributedFilterConfig(
            n_particles=8, n_filters=6, topology="ring", n_exchange=1,
            seed=11, allocation="mass", alloc_min_width=2,
            alloc_hysteresis=0.0, resample_policy="ess", resample_arg=0.5)
        pf = DistributedParticleFilter(model, config)
        truth = model.simulate(15, make_rng("numpy", seed=5))
        ests = np.stack([pf.step(truth.measurements[k]) for k in range(15)])
        assert np.isfinite(ests).all()
        assert pf.widths.min() < config.n_particles  # rows actually shrank


def test_ess_threshold_validation():
    with pytest.raises(ValueError):
        ESSThresholdPolicy(ratio=0.0)
    with pytest.raises(ValueError):
        ESSThresholdPolicy(ratio=1.5)


def test_random_frequency_policy_rates():
    rng = make_rng("numpy", seed=1)
    w = np.ones((10_000, 4))
    mask = RandomFrequencyPolicy(frequency=0.3).should_resample(w, rng)
    assert abs(mask.mean() - 0.3) < 0.02
    assert RandomFrequencyPolicy(frequency=1.0).should_resample(w, rng).all()
    assert not RandomFrequencyPolicy(frequency=0.0).should_resample(w, rng).any()


def test_random_frequency_validation():
    with pytest.raises(ValueError):
        RandomFrequencyPolicy(frequency=-0.1)
    with pytest.raises(ValueError):
        RandomFrequencyPolicy(frequency=1.1)
