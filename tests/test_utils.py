"""Tests for the shared utility helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    check_dtype,
    check_positive_int,
    check_power_of_two,
    check_probability_vector,
    is_power_of_two,
    next_power_of_two,
    normalize_weights,
)


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(5, "x") == 5
        assert check_positive_int(np.int64(3), "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True])
    def test_positive_int_rejects(self, bad):
        with pytest.raises((ValueError, TypeError)):
            check_positive_int(bad, "x")

    def test_power_of_two(self):
        assert check_power_of_two(8, "x") == 8
        with pytest.raises(ValueError):
            check_power_of_two(12, "x")

    def test_dtype(self):
        assert check_dtype("float32") == np.dtype(np.float32)
        assert check_dtype(np.float64) == np.dtype(np.float64)
        with pytest.raises(ValueError):
            check_dtype(np.int32)

    @pytest.mark.parametrize(
        "bad",
        [np.zeros(0), np.zeros(3), -np.ones(3), np.array([np.nan, 1.0]), np.ones((2, 2))],
    )
    def test_probability_vector_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability_vector(bad)

    def test_probability_vector_accepts_unnormalized(self):
        w = check_probability_vector([1.0, 3.0])
        np.testing.assert_array_equal(w, [1.0, 3.0])


class TestArrays:
    def test_is_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(1024)
        assert not is_power_of_two(0) and not is_power_of_two(12)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_normalize_weights_rows(self):
        w = normalize_weights(np.array([[1.0, 3.0], [0.0, 0.0]]), axis=1)
        np.testing.assert_allclose(w[0], [0.25, 0.75])
        np.testing.assert_allclose(w[1], [0.5, 0.5])  # degenerate row -> uniform

    def test_normalize_weights_nan_total(self):
        w = normalize_weights(np.array([np.inf, 1.0]))
        np.testing.assert_allclose(w, [0.5, 0.5])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=64))
    def test_normalize_property(self, ws):
        w = normalize_weights(np.asarray(ws))
        assert w.shape == (len(ws),)
        assert abs(w.sum() - 1.0) < 1e-9
        assert (w >= 0).all()
