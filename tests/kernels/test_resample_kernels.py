"""Tests for the work-group RWS and alias resampling kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import WorkGroup
from repro.kernels import alias_build_workgroup, alias_sample_workgroup, rws_workgroup


def table_mass(prob, alias):
    n = prob.size
    mass = prob / n
    np.add.at(mass, alias, (1.0 - prob) / n)
    return mass


class TestRWSKernel:
    def test_matches_reference_inverse_cdf(self):
        n = 64
        rng = np.random.default_rng(0)
        w = rng.random(n) + 1e-6
        u = rng.random(n)
        wg = WorkGroup(n)
        idx = rws_workgroup(wg, w, u)
        c = np.cumsum(w / w.sum())
        expected = np.searchsorted(c, u, side="right")
        np.testing.assert_array_equal(idx, np.minimum(expected, n - 1))

    def test_point_mass(self):
        n = 32
        w = np.zeros(n)
        w[17] = 1.0
        wg = WorkGroup(n)
        idx = rws_workgroup(wg, w, np.random.default_rng(1).random(n))
        assert (idx == 17).all()

    def test_bills_scan_barriers(self):
        n = 64
        wg = WorkGroup(n)
        rws_workgroup(wg, np.ones(n), np.random.default_rng(2).random(n))
        # Hillis-Steele scan: 2 barriers per step x log2(64) steps + setup.
        assert wg.stats.barriers >= 12

    def test_validation(self):
        wg = WorkGroup(16)
        with pytest.raises(ValueError):
            rws_workgroup(wg, np.ones(8), np.ones(16))


class TestAliasKernels:
    def test_build_exact_table_uniform(self):
        n = 32
        wg = WorkGroup(n)
        prob, alias, trace = alias_build_workgroup(wg, np.ones(n))
        np.testing.assert_allclose(prob, 1.0)
        assert trace.rounds == 0  # nothing small, nothing to pair

    def test_build_exact_table_random(self):
        n = 64
        w = np.random.default_rng(3).random(n) + 1e-6
        wg = WorkGroup(n)
        prob, alias, trace = alias_build_workgroup(wg, w)
        np.testing.assert_allclose(table_mass(prob, alias), w / w.sum(), atol=1e-9)
        assert trace.rounds >= 1

    def test_concurrency_drops_toward_one_for_skewed_weights(self):
        # The paper's observation: with one dominant particle the pairing
        # degenerates to a single pair per round.
        n = 64
        w = np.full(n, 1e-9)
        w[5] = 1.0
        wg = WorkGroup(n)
        prob, alias, trace = alias_build_workgroup(wg, w)
        np.testing.assert_allclose(table_mass(prob, alias), w / w.sum(), atol=1e-9)
        assert trace.final_concurrency == 1
        assert trace.rounds >= n // 2  # long serialized tail
        assert wg.stats.atomic_ops > 0

    def test_balanced_weights_finish_in_few_rounds(self):
        n = 256
        w = np.random.default_rng(4).random(n) + 0.5  # mild spread
        wg = WorkGroup(n)
        _, _, trace = alias_build_workgroup(wg, w)
        assert trace.rounds <= 12

    def test_validation(self):
        wg = WorkGroup(8)
        with pytest.raises(ValueError):
            alias_build_workgroup(wg, np.ones(4))

    def test_sample_kernel_distribution(self):
        n = 8
        w = np.arange(1.0, n + 1)
        wg = WorkGroup(n)
        prob, alias, _ = alias_build_workgroup(wg, w)
        rng = np.random.default_rng(5)
        counts = np.zeros(n)
        for _ in range(2000):
            wg2 = WorkGroup(n)
            idx = alias_sample_workgroup(wg2, prob, alias, rng.random(n), rng.random(n))
            counts += np.bincount(idx, minlength=n)
        freq = counts / counts.sum()
        np.testing.assert_allclose(freq, w / w.sum(), atol=0.01)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=128), st.integers(min_value=0, max_value=100_000))
def test_alias_build_mass_conservation_property(n, seed):
    w = np.random.default_rng(seed).random(n) + 1e-9
    wg = WorkGroup(n)
    prob, alias, _ = alias_build_workgroup(wg, w)
    np.testing.assert_allclose(table_mass(prob, alias), w / w.sum(), atol=1e-9)
    assert np.all(prob >= -1e-12) and np.all(prob <= 1 + 1e-12)
