"""Tests for the exchange-routing kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import mask_dead_sources, route_pairwise, route_pooled
from repro.topology import RingTopology, Torus2DTopology


def make_send(F, t, d, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(F, t, d)), rng.normal(size=(F, t))


class TestPairwise:
    def test_ring_routing(self):
        topo = RingTopology(4)
        send_states, send_logw = make_send(4, 1, 2)
        recv_s, recv_w = route_pairwise(send_states, send_logw, topo.neighbor_table(), topo.neighbor_table() >= 0)
        assert recv_s.shape == (4, 2, 2)  # degree 2, t=1
        # Filter 0's neighbours are 1 and 3: it receives exactly their sends.
        nb = topo.neighbors(0)
        got = {tuple(np.round(x, 12)) for x in recv_s[0]}
        want = {tuple(np.round(send_states[j, 0], 12)) for j in nb}
        assert got == want

    def test_padded_slots_get_neg_inf(self):
        # A path-like table with unequal degrees: pad slots must be -inf.
        table = np.array([[1, -1], [0, 2], [1, -1]])
        mask = table >= 0
        send_states, send_logw = make_send(3, 1, 1)
        _, recv_w = route_pairwise(send_states, send_logw, table, mask)
        assert recv_w[0, 1] == -np.inf
        assert recv_w[2, 1] == -np.inf
        assert np.isfinite(recv_w[1]).all()

    def test_torus_degree_four(self):
        topo = Torus2DTopology(16)
        send_states, send_logw = make_send(16, 2, 3)
        recv_s, recv_w = route_pairwise(send_states, send_logw, topo.neighbor_table(), topo.neighbor_table() >= 0)
        assert recv_s.shape == (16, 8, 3)  # 4 neighbours x t=2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            route_pairwise(np.zeros((4, 1, 2)), np.zeros((3, 1)), np.zeros((4, 2), int), np.ones((4, 2), bool))
        with pytest.raises(ValueError):
            route_pairwise(np.zeros((4, 1, 2)), np.zeros((4, 1)), np.zeros((3, 2), int), np.ones((3, 2), bool))


class TestPooled:
    def test_everyone_gets_global_best(self):
        send_states, send_logw = make_send(6, 2, 1, seed=1)
        send_logw[3, 1] = 100.0  # the global best
        recv_s, recv_w = route_pooled(send_states, send_logw, t=1)
        assert recv_s.shape == (6, 1, 1)
        for f in range(6):
            np.testing.assert_array_equal(recv_s[f, 0], send_states[3, 1])
            assert recv_w[f, 0] == 100.0

    def test_top_t_ordering(self):
        send_states, send_logw = make_send(4, 3, 1, seed=2)
        recv_s, recv_w = route_pooled(send_states, send_logw, t=4)
        flat = np.sort(send_logw.reshape(-1))[::-1][:4]
        np.testing.assert_array_equal(recv_w[0], flat)

    def test_validation(self):
        with pytest.raises(ValueError):
            route_pooled(np.zeros((2, 1, 1)), np.zeros((2, 1)), t=0)
        with pytest.raises(ValueError):
            route_pooled(np.zeros((2, 1)), np.zeros((2, 1)), t=1)

    def test_single_subfilter_pool(self):
        # F=1 degenerates to each filter receiving its own best-t back.
        send_states, send_logw = make_send(1, 3, 2, seed=3)
        recv_s, recv_w = route_pooled(send_states, send_logw, t=2)
        order = np.argsort(-send_logw[0], kind="stable")[:2]
        np.testing.assert_array_equal(recv_w[0], send_logw[0, order])
        np.testing.assert_array_equal(recv_s[0], send_states[0, order])

    def test_single_live_contribution(self):
        # All but one contribution is -inf (dead): the pool's top-t is the
        # lone live particle followed by -inf padding, never garbage state.
        send_states, send_logw = make_send(4, 2, 1, seed=4)
        send_logw[:] = -np.inf
        send_logw[2, 0] = 1.5
        recv_s, recv_w = route_pooled(send_states, send_logw, t=3)
        for f in range(4):
            assert recv_w[f, 0] == 1.5
            np.testing.assert_array_equal(recv_s[f, 0], send_states[2, 0])
            assert np.all(recv_w[f, 1:] == -np.inf)


class TestMaskDeadSources:
    def test_fully_dead_neighbourhood(self):
        topo = RingTopology(4)
        table = topo.neighbor_table()
        mask = table >= 0
        out = mask_dead_sources(table, mask, np.zeros(4, dtype=bool))
        assert out.shape == mask.shape
        assert not out.any()

    def test_dead_receiver_consumes_nothing(self):
        topo = RingTopology(4)
        table = topo.neighbor_table()
        alive = np.array([True, False, True, True])
        out = mask_dead_sources(table, table >= 0, alive)
        assert not out[1].any()  # dead receiver: every slot invalid
        # Live receivers keep only live sources.
        for f in (0, 2, 3):
            for slot, src in enumerate(table[f]):
                assert out[f, slot] == (src >= 0 and alive[src])

    def test_all_alive_is_identity(self):
        table = np.array([[1, -1], [0, 2], [1, -1]])
        mask = table >= 0
        np.testing.assert_array_equal(mask_dead_sources(table, mask, np.ones(3, bool)), mask)

    def test_shape_mismatches(self):
        table = np.array([[1, -1], [0, 2], [1, -1]])
        with pytest.raises(ValueError):
            mask_dead_sources(table, (table >= 0)[:, :1], np.ones(3, bool))
        with pytest.raises(ValueError):
            mask_dead_sources(table, table >= 0, np.ones(4, bool))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=1000),
)
def test_pairwise_is_permutation_of_sends_property(F, t, d, seed):
    topo = RingTopology(F)
    send_states, send_logw = make_send(F, t, d, seed=seed)
    recv_s, recv_w = route_pairwise(send_states, send_logw, topo.neighbor_table(), topo.neighbor_table() >= 0)
    # Every received finite-weight particle is one of the sent particles.
    sent = {tuple(np.round(send_states[f, i], 10)) for f in range(F) for i in range(t)}
    for f in range(F):
        for j in range(recv_s.shape[1]):
            if np.isfinite(recv_w[f, j]):
                assert tuple(np.round(recv_s[f, j], 10)) in sent


class TestPooledTopT:
    """pooled_top_t_indices must match the stable full argsort bit-for-bit."""

    def reference(self, flat, t):
        return np.argsort(-flat, kind="stable")[: min(t, flat.size)]

    def check(self, flat, t):
        from repro.kernels.exchange import pooled_top_t_indices
        np.testing.assert_array_equal(pooled_top_t_indices(flat, t), self.reference(flat, t))

    def test_random_values(self):
        rng = np.random.default_rng(0)
        for t in (1, 3, 7, 50, 100):
            self.check(rng.normal(size=400), t)

    def test_heavy_ties(self):
        flat = np.repeat([3.0, 1.0, 2.0], 50)
        for t in (1, 10, 49, 51, 150):
            self.check(flat, t)

    def test_neg_inf_blocks(self):
        flat = np.full(200, -np.inf)
        flat[17] = 1.0
        flat[42] = 0.5
        for t in (1, 2, 3, 20):
            self.check(flat, t)

    def test_nan_values(self):
        rng = np.random.default_rng(1)
        flat = rng.normal(size=300)
        flat[::7] = np.nan
        for t in (1, 5, 30, 250):
            self.check(flat, t)

    def test_t_equals_and_exceeds_n(self):
        rng = np.random.default_rng(2)
        flat = rng.normal(size=64)
        self.check(flat, 64)
        self.check(flat, 200)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=10_000))
    def test_matches_argsort_property(self, n, t, seed):
        rng = np.random.default_rng(seed)
        flat = rng.normal(size=n)
        flat[rng.random(n) < 0.1] = -np.inf
        self.check(flat, t)


class TestRoutePairwiseOut:
    def test_out_matches_allocating_form(self):
        topo = RingTopology(6)
        table, mask = topo.neighbor_table(), topo.neighbor_table() >= 0
        send_states, send_logw = make_send(6, 2, 3, seed=9)
        ref_s, ref_w = route_pairwise(send_states, send_logw, table, mask)
        out_s = np.empty_like(ref_s)
        out_w = np.empty_like(ref_w)
        got_s, got_w = route_pairwise(send_states, send_logw, table, mask,
                                      out_states=out_s, out_logw=out_w)
        assert got_s is out_s and got_w is out_w
        np.testing.assert_array_equal(out_s, ref_s)
        np.testing.assert_array_equal(out_w, ref_w)

    def test_out_validation(self):
        topo = RingTopology(4)
        table, mask = topo.neighbor_table(), topo.neighbor_table() >= 0
        send_states, send_logw = make_send(4, 1, 2)
        good_s = np.empty((4, 2, 2))
        good_w = np.empty((4, 2))
        with pytest.raises(ValueError):  # only one out buffer
            route_pairwise(send_states, send_logw, table, mask, out_states=good_s)
        with pytest.raises(ValueError):  # wrong shape
            route_pairwise(send_states, send_logw, table, mask,
                           out_states=np.empty((4, 3, 2)), out_logw=good_w)
        with pytest.raises(ValueError):  # non-contiguous
            route_pairwise(send_states, send_logw, table, mask,
                           out_states=np.empty((4, 2, 4))[:, :, ::2], out_logw=good_w)
