"""Tests for scan and reduction kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import WorkGroup
from repro.kernels import (
    argmax_reduce_batch,
    blelloch_scan_workgroup,
    exclusive_scan_batch,
    inclusive_scan_batch,
    tree_reduce_workgroup,
)


def test_batched_scans():
    x = np.array([[1.0, 2.0, 3.0], [4.0, 0.0, 1.0]])
    np.testing.assert_array_equal(inclusive_scan_batch(x), [[1, 3, 6], [4, 4, 5]])
    np.testing.assert_array_equal(exclusive_scan_batch(x), [[0, 1, 3], [0, 4, 4]])


def test_blelloch_matches_exclusive_scan():
    data = np.random.default_rng(0).random(64)
    wg = WorkGroup(32)
    out = blelloch_scan_workgroup(wg, data)
    expected = np.concatenate([[0.0], np.cumsum(data)[:-1]])
    np.testing.assert_allclose(out, expected, atol=1e-12)


def test_blelloch_size_validation():
    wg = WorkGroup(32)
    with pytest.raises(ValueError):
        blelloch_scan_workgroup(wg, np.ones(32))  # needs 2x group size


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10_000))
def test_blelloch_property(log_half, seed):
    n = 1 << (log_half + 1)
    data = np.random.default_rng(seed).random(n)
    wg = WorkGroup(n // 2)
    out = blelloch_scan_workgroup(wg, data)
    expected = np.concatenate([[0.0], np.cumsum(data)[:-1]])
    np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-12)


def test_padding_removes_bank_conflicts():
    # The motivating measurement of GPU Gems ch. 39: the naive tree layout
    # serializes on banks at deep levels; the padded layout does not.
    data = np.random.default_rng(1).random(512)
    wg_naive = WorkGroup(256)
    blelloch_scan_workgroup(wg_naive, data, avoid_conflicts=False)
    wg_padded = WorkGroup(256)
    blelloch_scan_workgroup(wg_padded, data, avoid_conflicts=True)
    naive = wg_naive.finalize()
    padded = wg_padded.finalize()
    assert padded.local_access_cycles < naive.local_access_cycles
    assert padded.local_conflicted < naive.local_conflicted


def test_tree_reduce_max_and_sum():
    data = np.random.default_rng(2).random(64)
    for op, expected in (("max", data.max()), ("sum", data.sum())):
        wg = WorkGroup(64)
        mem = wg.local_array(64)
        mem[:] = data
        out = tree_reduce_workgroup(wg, mem, op=op)
        assert out == pytest.approx(expected)
        assert wg.stats.barriers == 6  # log2(64)


def test_tree_reduce_validation():
    wg = WorkGroup(8)
    mem = wg.local_array(8)
    with pytest.raises(ValueError):
        tree_reduce_workgroup(wg, mem, op="median")
    wg2 = WorkGroup(4)
    with pytest.raises(ValueError):
        tree_reduce_workgroup(wg2, mem)


def test_argmax_reduce_batch():
    keys = np.array([[1.0, 5.0, 2.0], [9.0, 0.0, 3.0]])
    np.testing.assert_array_equal(argmax_reduce_batch(keys), [1, 0])
