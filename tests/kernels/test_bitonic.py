"""Tests for the bitonic sorting network (batched and work-group forms)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import WorkGroup
from repro.kernels import bitonic_argsort_batch, bitonic_network, bitonic_sort_workgroup


def test_network_stage_count():
    # log2(n) * (log2(n) + 1) / 2 stages.
    assert len(bitonic_network(2)) == 1
    assert len(bitonic_network(8)) == 6
    assert len(bitonic_network(512)) == 45
    with pytest.raises(ValueError):
        bitonic_network(12)


def test_argsort_batch_matches_numpy():
    rng = np.random.default_rng(0)
    keys = rng.normal(size=(20, 64))
    perm = bitonic_argsort_batch(keys)
    sorted_keys = np.take_along_axis(keys, perm, axis=1)
    np.testing.assert_array_equal(sorted_keys, np.sort(keys, axis=1))


def test_argsort_batch_descending():
    rng = np.random.default_rng(1)
    keys = rng.normal(size=(5, 32))
    perm = bitonic_argsort_batch(keys, descending=True)
    sorted_keys = np.take_along_axis(keys, perm, axis=1)
    np.testing.assert_array_equal(sorted_keys, -np.sort(-keys, axis=1))


def test_argsort_batch_is_permutation():
    keys = np.random.default_rng(2).normal(size=(3, 128))
    perm = bitonic_argsort_batch(keys)
    for f in range(3):
        assert sorted(perm[f].tolist()) == list(range(128))


def test_argsort_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        bitonic_argsort_batch(np.zeros((2, 10)))


def test_argsort_with_duplicates():
    keys = np.array([[3.0, 1.0, 3.0, 1.0, 2.0, 2.0, 0.0, 0.0]])
    perm = bitonic_argsort_batch(keys)
    np.testing.assert_array_equal(np.take_along_axis(keys, perm, 1)[0], sorted(keys[0]))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10_000))
def test_argsort_property(log_m, seed):
    m = 1 << log_m
    keys = np.random.default_rng(seed).normal(size=(4, m))
    perm = bitonic_argsort_batch(keys)
    np.testing.assert_array_equal(np.take_along_axis(keys, perm, 1), np.sort(keys, axis=1))


class TestWorkGroupSort:
    def run_sort(self, values, descending=False, with_values=False):
        n = len(values)
        wg = WorkGroup(n)
        keys = wg.local_array(n)
        keys[:] = values
        vals = None
        if with_values:
            vals = wg.local_array(n, dtype=np.int64)
            vals[:] = np.arange(n)
        bitonic_sort_workgroup(wg, keys, vals, descending=descending)
        return wg, keys, vals

    def test_sorts_ascending(self):
        data = np.random.default_rng(3).normal(size=64)
        wg, keys, _ = self.run_sort(data)
        np.testing.assert_allclose(keys.data, np.sort(data))

    def test_sorts_descending(self):
        data = np.random.default_rng(4).normal(size=32)
        _, keys, _ = self.run_sort(data, descending=True)
        np.testing.assert_allclose(keys.data, -np.sort(-data))

    def test_permutes_value_array(self):
        data = np.random.default_rng(5).normal(size=32)
        _, keys, vals = self.run_sort(data, with_values=True)
        np.testing.assert_allclose(data[vals.data], keys.data)

    def test_barrier_count_equals_stage_count(self):
        wg, _, _ = self.run_sort(np.random.default_rng(6).normal(size=128))
        assert wg.stats.barriers == len(bitonic_network(128))

    def test_size_mismatch(self):
        wg = WorkGroup(16)
        keys = wg.local_array(32)
        with pytest.raises(ValueError):
            bitonic_sort_workgroup(wg, keys)
