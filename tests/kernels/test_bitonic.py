"""Tests for the bitonic sorting network (batched and work-group forms)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import WorkGroup
from repro.kernels import bitonic_argsort_batch, bitonic_network, bitonic_sort_workgroup


def test_network_stage_count():
    # log2(n) * (log2(n) + 1) / 2 stages.
    assert len(bitonic_network(2)) == 1
    assert len(bitonic_network(8)) == 6
    assert len(bitonic_network(512)) == 45
    with pytest.raises(ValueError):
        bitonic_network(12)


def test_argsort_batch_matches_numpy():
    rng = np.random.default_rng(0)
    keys = rng.normal(size=(20, 64))
    perm = bitonic_argsort_batch(keys)
    sorted_keys = np.take_along_axis(keys, perm, axis=1)
    np.testing.assert_array_equal(sorted_keys, np.sort(keys, axis=1))


def test_argsort_batch_descending():
    rng = np.random.default_rng(1)
    keys = rng.normal(size=(5, 32))
    perm = bitonic_argsort_batch(keys, descending=True)
    sorted_keys = np.take_along_axis(keys, perm, axis=1)
    np.testing.assert_array_equal(sorted_keys, -np.sort(-keys, axis=1))


def test_argsort_batch_is_permutation():
    keys = np.random.default_rng(2).normal(size=(3, 128))
    perm = bitonic_argsort_batch(keys)
    for f in range(3):
        assert sorted(perm[f].tolist()) == list(range(128))


class TestNonPowerOfTwoPadding:
    """Non-power-of-two rows are padded internally with a +inf sentinel."""

    @pytest.mark.parametrize("m", [1, 3, 5, 10, 33, 100])
    def test_argsort_ascending(self, m):
        keys = np.random.default_rng(7).normal(size=(4, m))
        perm = bitonic_argsort_batch(keys)
        np.testing.assert_array_equal(np.take_along_axis(keys, perm, 1), np.sort(keys, axis=1))
        for f in range(4):
            assert sorted(perm[f].tolist()) == list(range(m))

    @pytest.mark.parametrize("m", [3, 12, 100])
    def test_argsort_descending(self, m):
        keys = np.random.default_rng(8).normal(size=(3, m))
        perm = bitonic_argsort_batch(keys, descending=True)
        np.testing.assert_array_equal(np.take_along_axis(keys, perm, 1), -np.sort(-keys, axis=1))

    def test_argsort_integer_keys(self):
        keys = np.random.default_rng(9).integers(0, 50, size=(2, 11))
        perm = bitonic_argsort_batch(keys)
        np.testing.assert_array_equal(np.take_along_axis(keys, perm, 1), np.sort(keys, axis=1))


def test_argsort_with_duplicates():
    keys = np.array([[3.0, 1.0, 3.0, 1.0, 2.0, 2.0, 0.0, 0.0]])
    perm = bitonic_argsort_batch(keys)
    np.testing.assert_array_equal(np.take_along_axis(keys, perm, 1)[0], sorted(keys[0]))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=10_000))
def test_argsort_property(m, seed):
    keys = np.random.default_rng(seed).normal(size=(4, m))
    perm = bitonic_argsort_batch(keys)
    np.testing.assert_array_equal(np.take_along_axis(keys, perm, 1), np.sort(keys, axis=1))


class TestWorkGroupSort:
    def run_sort(self, values, descending=False, with_values=False):
        n = len(values)
        wg = WorkGroup(n)
        keys = wg.local_array(n)
        keys[:] = values
        vals = None
        if with_values:
            vals = wg.local_array(n, dtype=np.int64)
            vals[:] = np.arange(n)
        bitonic_sort_workgroup(wg, keys, vals, descending=descending)
        return wg, keys, vals

    def test_sorts_ascending(self):
        data = np.random.default_rng(3).normal(size=64)
        wg, keys, _ = self.run_sort(data)
        np.testing.assert_allclose(keys.data, np.sort(data))

    def test_sorts_descending(self):
        data = np.random.default_rng(4).normal(size=32)
        _, keys, _ = self.run_sort(data, descending=True)
        np.testing.assert_allclose(keys.data, -np.sort(-data))

    def test_permutes_value_array(self):
        data = np.random.default_rng(5).normal(size=32)
        _, keys, vals = self.run_sort(data, with_values=True)
        np.testing.assert_allclose(data[vals.data], keys.data)

    def test_barrier_count_equals_stage_count(self):
        wg, _, _ = self.run_sort(np.random.default_rng(6).normal(size=128))
        assert wg.stats.barriers == len(bitonic_network(128))

    def test_size_mismatch(self):
        wg = WorkGroup(16)
        keys = wg.local_array(32)
        with pytest.raises(ValueError):
            bitonic_sort_workgroup(wg, keys)

    @pytest.mark.parametrize("n", [3, 5, 12, 20])
    def test_padded_non_power_of_two(self, n):
        from repro.utils.arrays import next_power_of_two

        data = np.random.default_rng(n).normal(size=n)
        wg = WorkGroup(next_power_of_two(n))
        keys = wg.local_array(n)
        keys[:] = data
        vals = wg.local_array(n, dtype=np.int64)
        vals[:] = np.arange(n)
        bitonic_sort_workgroup(wg, keys, vals)
        np.testing.assert_allclose(keys.data, np.sort(data))
        np.testing.assert_allclose(data[vals.data], keys.data)

    def test_padded_descending_matches_batch(self):
        data = np.random.default_rng(10).normal(size=12)
        wg = WorkGroup(16)
        keys = wg.local_array(12)
        keys[:] = data
        bitonic_sort_workgroup(wg, keys, descending=True)
        np.testing.assert_array_equal(keys.data, -np.sort(-data))

    def test_padded_requires_padded_group_size(self):
        wg = WorkGroup(16)
        keys = wg.local_array(5)  # needs an 8-lane group, not 16
        with pytest.raises(ValueError, match="padded from 5"):
            bitonic_sort_workgroup(wg, keys)
