"""Float32 tolerance-parity suite: the numerical contract of the float32
dtype policy.

Every named policy keeps *reductions* in float64 (``DtypePolicy.reduce``),
so the only float32 error source is the rounding of the stored operands.
These tests pin that contract over 16 seeds: carrying weights in float32
costs ~1e-6 relative error through logsumexp / weight normalization /
prefix sums — never more — and block-distributed reductions remain exactly
equal to their single-matrix form.
"""

import numpy as np
import pytest

from repro.allocation.metrics import row_logsumexp
from repro.device.simt import WorkGroup
from repro.kernels.registry import default_registry
from repro.kernels.scan import (
    blelloch_scan_workgroup,
    exclusive_scan_batch,
    inclusive_scan_batch,
)
from repro.utils.arrays import normalize_weights

SEEDS = range(16)

#: documented bound: float32 storage of O(1) log-weights carries 2^-24
#: relative rounding; a row reduction over m <= 256 terms amplifies it by
#: well under 100x.
RTOL32 = 1e-5


@pytest.mark.parametrize("seed", SEEDS)
def test_logsumexp_float32_within_tolerance(seed):
    rng = np.random.default_rng(seed)
    lw64 = rng.standard_normal((8, 128)) * 3.0
    lw32 = lw64.astype(np.float32)
    ref = default_registry().batch("logsumexp")(lw64)
    got = default_registry().batch("logsumexp")(lw32)
    np.testing.assert_allclose(got, ref, rtol=RTOL32, atol=1e-6)


@pytest.mark.parametrize("seed", SEEDS)
def test_logsumexp_compiled_form_matches_reference_on_float32(seed):
    rng = np.random.default_rng(seed)
    lw32 = (rng.standard_normal((8, 128)) * 3.0).astype(np.float32)
    reg = default_registry()
    ref = reg.batch("logsumexp")(lw32)
    got = reg.form("logsumexp", "compiled")(lw32)
    np.testing.assert_allclose(got, ref, rtol=1e-12)


@pytest.mark.parametrize("seed", SEEDS)
def test_normalize_weights_float32_within_tolerance(seed):
    rng = np.random.default_rng(seed)
    w64 = rng.random((8, 128)) + 1e-3
    w32 = w64.astype(np.float32)
    ref = normalize_weights(w64)
    got = normalize_weights(w32)
    assert got.dtype == np.float64  # reduction promotes
    np.testing.assert_allclose(got.sum(axis=-1), 1.0, rtol=1e-12)
    np.testing.assert_allclose(got, ref, rtol=RTOL32, atol=1e-7)


@pytest.mark.parametrize("seed", SEEDS)
def test_row_logsumexp_distributed_reduction_equality(seed):
    # The multiprocess contract: each worker block reduces its own rows and
    # the master concatenates. Row reductions are block-independent, so the
    # distributed form must be EXACTLY equal — in float32 too, because
    # row_logsumexp always accumulates in float64.
    rng = np.random.default_rng(seed)
    lw = (rng.standard_normal((12, 64)) * 2.0).astype(np.float32)
    lw[0, :] = -np.inf  # degenerate row stays -inf through the split
    whole = row_logsumexp(lw)
    blocks = np.concatenate([row_logsumexp(lw[lo:lo + 4]) for lo in (0, 4, 8)])
    assert np.array_equal(whole, blocks)
    assert whole[0] == -np.inf


@pytest.mark.parametrize("seed", SEEDS)
def test_prefix_scan_float32_within_tolerance(seed):
    rng = np.random.default_rng(seed)
    w64 = rng.random((4, 128))
    w32 = w64.astype(np.float32)
    np.testing.assert_allclose(inclusive_scan_batch(w32),
                               inclusive_scan_batch(w64),
                               rtol=RTOL32, atol=1e-6)
    np.testing.assert_allclose(exclusive_scan_batch(w32),
                               exclusive_scan_batch(w64),
                               rtol=RTOL32, atol=1e-6)


@pytest.mark.parametrize("seed", range(4))
def test_blelloch_scan_float32_input_matches_batch(seed):
    # The work-group Blelloch scan promotes to float64 internally; feeding
    # it float32 data must agree with the batched exclusive scan of the
    # same float32 values bit-for-bit (identical f64 operands).
    rng = np.random.default_rng(seed)
    data = rng.random(64).astype(np.float32)
    wg = WorkGroup(size=32)
    got = blelloch_scan_workgroup(wg, data)
    ref = exclusive_scan_batch(data.astype(np.float64))[0]
    np.testing.assert_allclose(got, ref, rtol=1e-12, atol=0.0)
