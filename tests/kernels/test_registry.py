"""Tests for the kernel registry: API, auto-generated differential parity
tests over every validatable kernel, and cost-model integration."""

import numpy as np
import pytest

from repro.device import validate
from repro.device.costmodel import CostModel, filter_round_cost
from repro.device.spec import get_platform
from repro.kernels import (
    CostParams,
    CostSig,
    KernelDef,
    KernelRegistry,
    default_registry,
    weight_argsort_batch,
)

REG = default_registry()
VALIDATABLE = REG.validatable()


# ---------------------------------------------------------------------------
# Auto-generated differential tests: every validatable kernel, several sizes.
# Each case checks batch<->work-group parity AND measured SimtStats against
# the kernel's CostSig prediction (barriers, work) in one harness run.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", [64, 256])
@pytest.mark.parametrize("kdef", VALIDATABLE, ids=lambda k: k.name)
def test_kernel_parity_and_cost_prediction(kdef, n):
    report = validate(kdef, n=n, seed=0)
    assert report.ok, "\n".join(report.messages)
    assert report.parity_ok and report.work_ok
    if kdef.check_barriers:
        assert report.barriers_ok


def test_validatable_set_is_substantial():
    # The registry must expose the paper's core kernels to the harness.
    names = {k.name for k in VALIDATABLE}
    assert {"sort", "bitonic_sort", "blelloch_scan", "tree_reduce", "rws",
            "alias_build", "alias_sample", "metropolis"} <= names


def test_validate_rejects_cost_only_kernels():
    with pytest.raises(ValueError):
        validate(REG.get("rand"))


# ---------------------------------------------------------------------------
# Registry API
# ---------------------------------------------------------------------------

class TestRegistryAPI:
    def test_default_registry_is_cached(self):
        assert default_registry() is REG

    def test_expected_kernels_registered(self):
        for name in ("rand", "sampling", "sort", "estimate", "route_pairwise",
                     "route_pooled", "rws", "vose", "metropolis"):
            assert name in REG

    def test_duplicate_registration_raises(self):
        reg = KernelRegistry()
        kdef = KernelDef(name="k", description="", cost=CostSig())
        reg.register(kdef)
        with pytest.raises(ValueError, match="already registered"):
            reg.register(KernelDef(name="k", description="", cost=CostSig()))

    def test_unknown_kernel_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            REG.get("definitely-not-a-kernel")

    def test_cost_only_kernel_has_no_implementations(self):
        with pytest.raises(ValueError, match="no batch implementation"):
            REG.batch("rand")
        with pytest.raises(ValueError, match="no work-group implementation"):
            REG.workgroup("route_pooled")

    def test_dispatch_validates_form(self):
        with pytest.raises(ValueError, match="form must be"):
            REG.dispatch("sort", np.zeros((1, 4)), form="gpu")

    def test_dispatch_routes_to_batch(self):
        lw = np.random.default_rng(0).normal(size=(3, 16))
        np.testing.assert_array_equal(
            REG.dispatch("sort", lw), weight_argsort_batch(lw))

    def test_iteration_and_len(self):
        assert len(REG) == len(REG.names())
        assert sorted(k.name for k in REG) == REG.names()


def test_weight_argsort_is_stable_descending():
    # The engine's golden traces depend on this exact tie-breaking order.
    lw = np.array([[0.5, 1.5, 0.5, -1.0]])
    np.testing.assert_array_equal(
        weight_argsort_batch(lw), np.argsort(-lw, axis=1, kind="stable"))


# ---------------------------------------------------------------------------
# Cost-model integration: filter_round_cost derives workloads from the
# registered CostSigs (no hand-inlined formulas).
# ---------------------------------------------------------------------------

class TestCostIntegration:
    def test_every_kernel_prices_positive(self):
        cm = CostModel(get_platform("gtx-580"))
        params = CostParams(m=512, n_groups=64)
        for kdef in REG:
            assert cm.kernel_def_time(kdef, params) > 0.0

    def test_round_cost_kernels_match_registry_names(self):
        cost = filter_round_cost(get_platform("gtx-580"), 512, 64, 9)
        for key in cost.seconds:
            assert key in ("exchange", "resample") or key in REG

    def test_resampler_sigs_diverge(self):
        # rws pays a scan (barriers ~ 2 log2 m); metropolis is barrier-free
        # after staging; vose pays the worklist build.
        p = CostParams(m=512, n_groups=64, pool=516)
        rws = REG.workload("rws", p)
        met = REG.workload("metropolis", p)
        assert rws.syncs_per_group > met.syncs_per_group == 1

    def test_metropolis_selectable_in_round_cost(self):
        c = filter_round_cost(get_platform("gtx-580"), 512, 64, 9, resampler="metropolis")
        assert c.seconds["resample"] > 0

    def test_unknown_resampler_rejected(self):
        with pytest.raises(ValueError):
            filter_round_cost(get_platform("gtx-580"), 512, 64, 9, resampler="bogus")


# ---------------------------------------------------------------------------
# Engine integration: stages dispatch through the registry and the timing
# hook attributes per-kernel wall time on every backend.
# ---------------------------------------------------------------------------

def _run_small_filter(cls):
    from repro.core.parameters import DistributedFilterConfig
    from repro.models import RobotArmModel, RobotArmParams

    model = RobotArmModel(RobotArmParams(n_joints=2))
    cfg = DistributedFilterConfig(n_particles=8, n_filters=4, seed=3)
    f = cls(model, cfg)
    rng = np.random.default_rng(0)
    for _ in range(3):
        f.step(rng.normal(size=model.measurement_dim).astype(np.float64))
    return f


def test_vectorized_filter_reports_kernel_seconds():
    from repro.core.distributed import DistributedParticleFilter

    f = _run_small_filter(DistributedParticleFilter)
    assert f.kernel_seconds.get("sort", 0.0) > 0.0
    assert f.kernel_seconds.get("route_pairwise", 0.0) > 0.0


def test_sequential_filter_reports_kernel_seconds():
    from repro.backends.sequential import SequentialDistributedParticleFilter

    f = _run_small_filter(SequentialDistributedParticleFilter)
    assert f.kernel_seconds.get("sort", 0.0) > 0.0
