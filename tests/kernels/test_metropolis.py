"""Tests for the Metropolis resampler (Murray 2012): parity, bias, and
integration with the resampler registry."""

import numpy as np
import pytest

from repro.core.registry import make_resampler
from repro.device import WorkGroup
from repro.kernels import (
    default_metropolis_steps,
    metropolis_resample_batch,
    metropolis_workgroup,
)
from repro.prng.streams import make_rng
from repro.resampling import MetropolisResampler, resample_counts


def draw_inputs(F, m, B, k, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.1, 1.0, size=(F, m))
    return w, rng.random((F, B, k)), rng.random((F, B, k))


class TestBatchKernel:
    def test_indices_in_range(self):
        w, up, ua = draw_inputs(4, 32, 20, 32)
        idx = metropolis_resample_batch(w, up, ua)
        assert idx.shape == (4, 32)
        assert idx.min() >= 0 and idx.max() < 32

    def test_zero_steps_returns_start_points(self):
        w, _, _ = draw_inputs(2, 8, 1, 8)
        idx = metropolis_resample_batch(w, np.empty((2, 0, 8)), np.empty((2, 0, 8)))
        np.testing.assert_array_equal(idx, np.broadcast_to(np.arange(8), (2, 8)))

    def test_point_mass_dominates(self):
        # One particle holds essentially all the weight: with enough steps
        # nearly every chain must settle on it.
        w = np.full((1, 64), 1e-9)
        w[0, 5] = 1.0
        rng = np.random.default_rng(1)
        B = 200
        idx = metropolis_resample_batch(w, rng.random((1, B, 64)), rng.random((1, B, 64)))
        assert (idx == 5).mean() > 0.95

    def test_shape_validation(self):
        w, up, ua = draw_inputs(2, 8, 4, 8)
        with pytest.raises(ValueError):
            metropolis_resample_batch(w, up, ua[:1])

    def test_ancestor_distribution_tracks_weights(self):
        # Empirical ancestor frequencies approach the normalized weights.
        m, k = 16, 16
        w = np.linspace(1.0, 4.0, m)[None, :]
        rng = np.random.default_rng(2)
        B = default_metropolis_steps(m)
        counts = np.zeros(m)
        trials = 400
        for _ in range(trials):
            idx = metropolis_resample_batch(w, rng.random((1, B, k)), rng.random((1, B, k)))
            counts += resample_counts(idx[0], m)
        freq = counts / counts.sum()
        target = (w[0] / w[0].sum())
        assert np.abs(freq - target).max() < 0.02

    def test_bias_shrinks_with_chain_length(self):
        # Longer chains move the empirical distribution closer to the target.
        m, k, trials = 8, 64, 300
        w = np.geomspace(1.0, 8.0, m)[None, :]
        target = w[0] / w[0].sum()
        rng = np.random.default_rng(3)

        def tv_distance(B):
            counts = np.zeros(m)
            for _ in range(trials):
                idx = metropolis_resample_batch(w, rng.random((1, B, k)), rng.random((1, B, k)))
                counts += resample_counts(idx[0], m)
            freq = counts / counts.sum()
            return 0.5 * np.abs(freq - target).sum()

        assert tv_distance(40) < tv_distance(1)


class TestWorkGroupParity:
    @pytest.mark.parametrize("n", [16, 64])
    def test_bitwise_parity_with_batch(self, n):
        w, up, ua = draw_inputs(1, n, default_metropolis_steps(n), n, seed=4)
        expected = metropolis_resample_batch(w, up, ua)[0]
        wg = WorkGroup(n)
        got = metropolis_workgroup(wg, w[0], up[0], ua[0])
        np.testing.assert_array_equal(got, expected)
        # One barrier to stage the weights; the chains are barrier-free.
        assert wg.stats.barriers == 1

    def test_input_validation(self):
        wg = WorkGroup(8)
        with pytest.raises(ValueError):
            metropolis_workgroup(wg, np.ones(4), np.zeros((2, 8)), np.zeros((2, 8)))
        with pytest.raises(ValueError):
            metropolis_workgroup(wg, np.ones(8), np.zeros((2, 8)), np.zeros((3, 8)))


class TestResamplerClass:
    def test_registry_constructs_it(self):
        r = make_resampler("metropolis")
        assert isinstance(r, MetropolisResampler)
        assert r.name == "metropolis"

    def test_default_steps_heuristic(self):
        assert default_metropolis_steps(1024) == 4 * 10 + 8
        assert MetropolisResampler()._steps(1024) == default_metropolis_steps(1024)
        assert MetropolisResampler(steps=5)._steps(1024) == 5

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            MetropolisResampler(steps=0)

    def test_resample_single_row(self):
        r = MetropolisResampler()
        idx = r.resample(np.full(32, 1 / 32), 16, make_rng("numpy", 0))
        assert idx.shape == (16,)
        assert idx.min() >= 0 and idx.max() < 32

    def test_resample_batch_shape_and_range(self):
        r = MetropolisResampler()
        w = np.random.default_rng(5).uniform(0.1, 1.0, size=(6, 32))
        idx = r.resample_batch(w, 32, make_rng("numpy", 1))
        assert idx.shape == (6, 32)
        assert idx.min() >= 0 and idx.max() < 32

    def test_deterministic_under_seed(self):
        r = MetropolisResampler()
        w = np.random.default_rng(6).uniform(0.1, 1.0, size=(3, 16))
        a = r.resample_batch(w, 16, make_rng("numpy", 7))
        b = r.resample_batch(w, 16, make_rng("numpy", 7))
        np.testing.assert_array_equal(a, b)

    def test_filter_runs_with_metropolis(self):
        from repro.core import DistributedFilterConfig, DistributedParticleFilter
        from repro.models import RobotArmModel, RobotArmParams

        model = RobotArmModel(RobotArmParams(n_joints=2))
        cfg = DistributedFilterConfig(n_particles=16, n_filters=4,
                                      resampler="metropolis", seed=11)
        f = DistributedParticleFilter(model, cfg)
        rng = np.random.default_rng(12)
        for _ in range(5):
            est = f.step(rng.normal(size=model.measurement_dim))
        assert np.isfinite(est).all()
        assert np.isfinite(f.log_weights).all()
