"""Tests for execution-form dispatch: the open form set on KernelDef and the
ExecutionPolicy that selects which form a backend actually runs."""

import numpy as np
import pytest

from repro.kernels.forms import (
    COMPILED_FORM,
    REFERENCE_FORM,
    ExecutionPolicy,
    maybe_njit,
    numba_available,
)
from repro.kernels.registry import CostParams, CostSig, KernelDef, KernelRegistry, default_registry


def make_registry():
    reg = KernelRegistry()
    reg.register(KernelDef(
        name="twice",
        description="",
        cost=CostSig(local_ops=lambda p: p.total),
        batch=lambda x: x * 2,
        forms={"compiled": lambda x: x + x},
        make_inputs=lambda rng, n: {"x": rng.standard_normal(n)},
    ))
    reg.register(KernelDef(
        name="plain",
        description="",
        cost=CostSig(local_ops=lambda p: p.total),
        batch=lambda x: x,
    ))
    reg.register(KernelDef(
        name="cost_only",
        description="",
        cost=CostSig(local_ops=lambda p: p.total),
    ))
    return reg


class TestRegistryForms:
    def test_forms_of_lists_reference_then_extras(self):
        reg = make_registry()
        assert reg.forms_of("twice") == ("reference", "compiled")
        assert reg.forms_of("plain") == ("reference",)
        assert reg.forms_of("cost_only") == ()

    def test_register_form_attaches_and_dispatches(self):
        reg = make_registry()
        reg.register_form("plain", "fused", lambda x: x * 3)
        assert reg.form("plain", "fused")(2) == 6
        assert reg.dispatch("plain", 2, form="fused") == 6
        assert reg.dispatch("plain", 2) == 2  # default form = batch

    def test_register_form_rejects_builtin_names(self):
        reg = make_registry()
        for reserved in ("batch", "reference", "workgroup"):
            with pytest.raises(ValueError, match="reserved"):
                reg.register_form("plain", reserved, lambda x: x)

    def test_register_form_rejects_duplicates(self):
        reg = make_registry()
        with pytest.raises(ValueError, match="already has"):
            reg.register_form("twice", "compiled", lambda x: x)

    def test_form_raises_for_missing_form(self):
        reg = make_registry()
        with pytest.raises(ValueError, match="form must be"):
            reg.form("plain", "fused")


class TestExecutionPolicy:
    def test_default_policy_selects_reference(self):
        reg = make_registry()
        policy = ExecutionPolicy()
        name, impl = policy.select(reg.get("twice"))
        assert name == REFERENCE_FORM
        assert impl is reg.get("twice").batch

    def test_compiled_policy_prefers_compiled(self):
        reg = make_registry()
        policy = ExecutionPolicy.from_config("compiled")
        name, _ = policy.select(reg.get("twice"))
        assert name == COMPILED_FORM

    def test_compiled_policy_falls_back_to_reference(self):
        reg = make_registry()
        policy = ExecutionPolicy.from_config("compiled")
        name, _ = policy.select(reg.get("plain"))
        assert name == REFERENCE_FORM

    def test_cost_only_kernel_selects_none(self):
        reg = make_registry()
        assert ExecutionPolicy.from_config("compiled").select(reg.get("cost_only")) is None

    def test_per_kernel_override(self):
        reg = make_registry()
        policy = ExecutionPolicy(prefer=(COMPILED_FORM, REFERENCE_FORM),
                                 overrides={"twice": (REFERENCE_FORM,)})
        assert policy.select(reg.get("twice"))[0] == REFERENCE_FORM

    def test_failing_probe_skips_the_form(self):
        reg = make_registry()
        policy = ExecutionPolicy(prefer=(COMPILED_FORM, REFERENCE_FORM),
                                 probes={COMPILED_FORM: lambda: False})
        assert policy.select(reg.get("twice"))[0] == REFERENCE_FORM

    def test_raising_probe_counts_as_unavailable(self):
        reg = make_registry()

        def boom():
            raise RuntimeError("no device")

        policy = ExecutionPolicy(prefer=(COMPILED_FORM, REFERENCE_FORM),
                                 probes={COMPILED_FORM: boom})
        assert policy.select(reg.get("twice"))[0] == REFERENCE_FORM

    def test_from_config_rejects_unknown_execution(self):
        with pytest.raises(ValueError, match="execution"):
            ExecutionPolicy.from_config("gpu")

    def test_reference_is_always_appended_to_preferences(self):
        policy = ExecutionPolicy(prefer=(COMPILED_FORM,))
        assert policy.preference_for("anything")[-1] == REFERENCE_FORM

    def test_available_forms(self):
        reg = make_registry()
        policy = ExecutionPolicy()
        assert policy.available_forms(reg.get("twice")) == ("reference", "compiled")


class TestWarmUp:
    def test_warm_up_runs_selected_compiled_forms_once(self):
        reg = make_registry()
        calls = []
        reg.get("twice").forms["compiled"] = lambda x: calls.append(x) or x
        warmed = ExecutionPolicy.from_config("compiled").warm_up(reg)
        assert warmed == ["twice"]
        assert len(calls) == 1

    def test_warm_up_skips_reference_selections(self):
        reg = make_registry()
        assert ExecutionPolicy().warm_up(reg) == []

    def test_warm_up_survives_a_raising_form(self):
        reg = make_registry()

        def boom(x):
            raise RuntimeError("compile failed")

        reg.get("twice").forms["compiled"] = boom
        assert ExecutionPolicy.from_config("compiled").warm_up(reg) == []

    def test_default_registry_warm_up_names(self):
        warmed = ExecutionPolicy.from_config("compiled").warm_up(default_registry())
        assert "logsumexp" in warmed


class TestNumbaGate:
    def test_numba_available_is_bool_and_cached(self):
        assert numba_available() is numba_available()
        assert isinstance(numba_available(), bool)

    def test_maybe_njit_returns_a_callable_either_way(self):
        @maybe_njit
        def f(x):
            return x + 1.0

        assert f(1.0) == 2.0
        if not numba_available():
            assert f.__name__ == "f"  # identity fallback: the plain function

    def test_maybe_njit_with_options(self):
        @maybe_njit(fastmath=False)
        def g(x):
            return x * 2.0

        assert g(3.0) == 6.0


class TestDefaultRegistryForms:
    def test_logsumexp_has_compiled_form_with_reference_parity(self):
        reg = default_registry()
        assert reg.forms_of("logsumexp") == ("reference", "compiled")
        rng = np.random.default_rng(0)
        lw = rng.standard_normal((4, 64))
        np.testing.assert_allclose(reg.form("logsumexp", "compiled")(lw),
                                   reg.batch("logsumexp")(lw), rtol=1e-12)

    def test_fused_step_is_compiled_only(self):
        reg = default_registry()
        assert reg.forms_of("fused_step") == ("compiled",)
        assert ExecutionPolicy().select(reg.get("fused_step")) is None
