"""Structural tests for all exchange topologies."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import (
    AllToAllTopology,
    GraphTopology,
    RingTopology,
    Torus2DTopology,
    make_topology,
)


@pytest.mark.parametrize(
    "topo",
    [
        RingTopology(8),
        RingTopology(2),
        RingTopology(3),
        Torus2DTopology(16),
        Torus2DTopology(12, rows=3, cols=4),
        Torus2DTopology(7),  # prime -> 1 x 7 grid
        AllToAllTopology(6),
        GraphTopology.random_regular(3, 16),
        GraphTopology.hypercube(4),
    ],
    ids=lambda t: f"{t.name}-{t.n_filters}",
)
class TestTopologyContract:
    def test_symmetric_no_self_loops(self, topo):
        topo.validate()

    def test_neighbor_table_shape(self, topo):
        table = topo.neighbor_table()
        assert table.shape == (topo.n_filters, topo.max_degree)
        for i in range(topo.n_filters):
            nb = [x for x in table[i] if x >= 0]
            assert nb == topo.neighbors(i)

    def test_networkx_roundtrip(self, topo):
        g = topo.as_networkx()
        assert g.number_of_nodes() == topo.n_filters
        for i in range(topo.n_filters):
            assert sorted(g.neighbors(i)) == topo.neighbors(i)

    def test_out_of_range_index(self, topo):
        with pytest.raises(IndexError):
            topo.neighbors(topo.n_filters)


def test_ring_degree_two():
    topo = RingTopology(64)
    assert all(len(topo.neighbors(i)) == 2 for i in range(64))
    assert nx.is_connected(topo.as_networkx())


def test_ring_single_filter_has_no_neighbors():
    assert RingTopology(1).neighbors(0) == []


def test_torus_degree_four_and_connected():
    topo = Torus2DTopology(64)
    assert topo.rows == 8 and topo.cols == 8
    assert all(len(topo.neighbors(i)) == 4 for i in range(64))
    assert nx.is_connected(topo.as_networkx())


def test_torus_diameter_below_ring():
    # The torus's extra connectivity must shorten worst-case propagation.
    ring_d = nx.diameter(RingTopology(64).as_networkx())
    torus_d = nx.diameter(Torus2DTopology(64).as_networkx())
    assert torus_d < ring_d


def test_torus_shape_validation():
    with pytest.raises(ValueError):
        Torus2DTopology(12, rows=5, cols=3)


def test_alltoall_complete():
    topo = AllToAllTopology(5)
    assert topo.pooled
    g = topo.as_networkx()
    assert g.number_of_edges() == 10


def test_graph_topology_rejects_bad_labels():
    g = nx.Graph()
    g.add_edge("a", "b")
    with pytest.raises(ValueError):
        GraphTopology(g)


def test_graph_topology_rejects_self_loops():
    g = nx.Graph()
    g.add_nodes_from(range(3))
    g.add_edge(1, 1)
    with pytest.raises(ValueError):
        GraphTopology(g)


@pytest.mark.parametrize(
    "name,cls",
    [("ring", RingTopology), ("torus", Torus2DTopology), ("all-to-all", AllToAllTopology), ("2d-torus", Torus2DTopology)],
)
def test_factory(name, cls):
    assert isinstance(make_topology(name, 16), cls)


def test_factory_none_topology():
    topo = make_topology("none", 4)
    assert all(topo.neighbors(i) == [] for i in range(4))


def test_factory_unknown():
    with pytest.raises(ValueError):
        make_topology("mobius", 4)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=128))
def test_ring_structure_property(n):
    topo = RingTopology(n)
    topo.validate()
    table = topo.neighbor_table()
    assert table.shape[1] <= 2
    if n >= 3:
        assert nx.is_connected(topo.as_networkx())


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=128))
def test_torus_structure_property(n):
    topo = Torus2DTopology(n)
    topo.validate()
    assert topo.rows * topo.cols == n
    if n >= 2:
        assert nx.is_connected(topo.as_networkx())
