"""Unit tests for the shard-plan layer (partitioning + cut accounting)."""

import numpy as np
import pytest

from repro.resilience.healing import TopologyHealer
from repro.topology import make_shard_plan, make_topology, shard_table_view


class TestMakeShardPlan:
    def test_contiguous_partition_covers_all_filters(self):
        plan = make_shard_plan(make_topology("ring", 12), 3)
        seen = np.sort(np.concatenate([plan.members(s) for s in range(3)]))
        np.testing.assert_array_equal(seen, np.arange(12))
        np.testing.assert_array_equal(plan.counts(), [4, 4, 4])

    def test_ring_contiguous_cut_is_two_edges_per_boundary(self):
        # Each shard boundary of a contiguous ring partition carries exactly
        # one directed edge per direction, regardless of the filter count.
        for n in (8, 16, 64):
            plan = make_shard_plan(make_topology("ring", n), 2)
            assert plan.cut_size() == 4
        assert make_shard_plan(make_topology("ring", 16), 4).cut_size() == 8

    def test_strided_cut_never_beats_contiguous_on_a_ring(self):
        topo = make_topology("ring", 16)
        contiguous = make_shard_plan(topo, 4, strategy="contiguous")
        strided = make_shard_plan(topo, 4, strategy="strided")
        assert strided.cut_size() >= contiguous.cut_size()

    def test_single_shard_has_no_cut(self):
        plan = make_shard_plan(make_topology("ring", 8), 1)
        assert plan.cut_size() == 0
        assert plan.cut_bytes_per_round(2, 3) == 0

    def test_cut_bytes_formula(self):
        plan = make_shard_plan(make_topology("ring", 8), 2)
        t, d = 3, 5
        expected = plan.cut_size() * t * (d * 4 + 8)
        assert plan.cut_bytes_per_round(t, d) == expected
        # Wider states cost proportionally more on the wire.
        assert plan.cut_bytes_per_round(t, d, state_itemsize=8) == \
            plan.cut_size() * t * (d * 8 + 8)

    def test_summary_keys(self):
        s = make_shard_plan(make_topology("torus", 16), 4).summary(
            n_exchange=2, state_dim=3)
        assert s["n_filters"] == 16 and s["n_shards"] == 4
        assert s["shard_sizes"] == [4, 4, 4, 4]
        assert s["cut_edges"] > 0 and s["cut_bytes_per_round"] > 0

    def test_rejects_bad_shard_counts(self):
        topo = make_topology("ring", 8)
        with pytest.raises(ValueError):
            make_shard_plan(topo, 0)
        with pytest.raises(ValueError):
            make_shard_plan(topo, 3)  # does not divide 8
        with pytest.raises(ValueError):
            make_shard_plan(topo, 2, strategy="bogus")


class TestShardTableView:
    def _setup(self, n=8, workers=2):
        topo = make_topology("ring", n)
        healer = TopologyHealer(topo)
        table, mask = healer.neighbor_table()
        block = n // workers
        owner = np.repeat(np.arange(workers, dtype=np.int64), block)
        return topo, table, mask, owner, block

    def test_local_and_wire_slots_partition_the_table(self):
        _, table, mask, owner, block = self._setup()
        ids = np.arange(block, dtype=np.int64)  # worker 0
        view = shard_table_view(0, ids, owner, table, mask)
        n_slots = ids.size * view.n_cols
        assert view.local_i.size + view.wire_i.size == n_slots
        # Local sources resolve to rows inside this shard.
        assert (view.local_src >= 0).all()
        assert (view.local_src < ids.size).all()

    def test_ring_boundary_filters_are_the_only_wire_consumers(self):
        _, table, mask, owner, block = self._setup()
        ids = np.arange(block, dtype=np.int64)
        view = shard_table_view(0, ids, owner, table, mask)
        # On a contiguous ring shard only the first and last member have a
        # cross-shard neighbour.
        assert set(view.wire_i[view.wire_valid].tolist()) == {0, block - 1}
        # Valid wire sources live on the *other* shard.
        srcs = view.wire_src[view.wire_valid]
        assert (owner[srcs] != 0).all()

    def test_dead_slots_ride_the_wire_as_invalid(self):
        topo, _, _, owner, block = self._setup()
        healer = TopologyHealer(topo)
        healer.mark_dead([block])  # worker 1's first filter
        table, mask = healer.neighbor_table()
        ids = np.arange(block, dtype=np.int64)
        view = shard_table_view(0, ids, owner, table, mask)
        # Masked slots are wire slots with wire_valid False, so the master
        # packs the same row-0 + (-inf) filler the dense path uses.
        assert (~view.wire_valid).any() or (~mask[ids]).sum() == 0

    def test_wire_payload_roundtrip(self):
        _, table, mask, owner, block = self._setup()
        ids = np.arange(block, dtype=np.int64)
        view = shard_table_view(0, ids, owner, table, mask)
        payload = view.wire_payload()
        np.testing.assert_array_equal(payload[0], ids)
        assert payload[1] == view.n_cols
