"""The session layer's core contract: cohort-stepped == solo, bit for bit."""

import numpy as np
import pytest

from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import LinearGaussianModel, UNGMModel
from repro.sessions import SessionManager, cohort_envelope, cohort_key
from tests.sessions.helpers import (
    assert_bit_identical,
    cohort_run,
    measurements,
    scalar_model,
    solo_run,
)

#: every config is run as S=3 sessions (seeds differ) through one cohort and
#: compared bitwise, session by session, to the solo filter.
CONFIGS = {
    "single_filter": dict(n_particles=8, n_filters=1, n_exchange=0),
    "ring_exchange": dict(n_particles=8, n_filters=4, topology="ring", n_exchange=2),
    "fused_compiled": dict(n_particles=8, n_filters=4, topology="ring",
                           n_exchange=1, execution="compiled"),
    "ess_policy": dict(n_particles=8, n_filters=4, topology="ring", n_exchange=1,
                       resample_policy="ess", resample_arg=0.5),
    "adaptive_ess_alloc": dict(n_particles=8, n_filters=4, topology="ring",
                               n_exchange=1, allocation="ess"),
    "weighted_mean": dict(n_particles=8, n_filters=4, topology="ring",
                          n_exchange=1, estimator="weighted_mean"),
    "stratified": dict(n_particles=8, n_filters=4, topology="ring", n_exchange=1,
                       resampler="stratified"),
    "float32_policy": dict(n_particles=8, n_filters=4, topology="ring",
                           n_exchange=1, dtype_policy="float32"),
    "philox": dict(n_particles=8, n_filters=4, topology="ring", n_exchange=1,
                   rng="philox"),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_cohort_matches_solo(name):
    model = scalar_model()
    kw = CONFIGS[name]
    cfgs = [DistributedFilterConfig(seed=10 + i, **kw) for i in range(3)]
    meas = measurements(3, 6)
    got = cohort_run(model, cfgs, meas)
    for i, cfg in enumerate(cfgs):
        want = solo_run(model, cfg, meas[i])
        assert_bit_identical(got[i], want, label=f"{name}/s{i}")


def test_sessions_actually_share_one_cohort():
    model = scalar_model()
    cfgs = [DistributedFilterConfig(n_particles=8, n_filters=2, n_exchange=0,
                                    seed=i) for i in range(4)]
    mgr = SessionManager()
    for i, cfg in enumerate(cfgs):
        mgr.attach(f"s{i}", model, cfg)
    assert len(mgr.cohorts) == 1
    assert len(next(iter(mgr.cohorts.values()))) == 4


def test_equal_value_models_share_a_cohort():
    # cohort_key uses the model's value signature, so two instances built
    # from equal matrices batch together.
    m1, m2 = scalar_model(), scalar_model()
    cfg = DistributedFilterConfig(n_particles=8, n_filters=1, n_exchange=0)
    assert cohort_key(m1, cfg.with_(seed=1)) == cohort_key(m2, cfg.with_(seed=2))


def test_different_shapes_form_different_cohorts():
    model = scalar_model()
    mgr = SessionManager()
    mgr.attach("a", model, DistributedFilterConfig(n_particles=8, n_filters=1,
                                                  n_exchange=0, seed=1))
    mgr.attach("b", model, DistributedFilterConfig(n_particles=16, n_filters=1,
                                                   n_exchange=0, seed=1))
    assert len(mgr.cohorts) == 2


class TestSoloFallback:
    def test_out_of_envelope_model_is_served_solo(self):
        model = UNGMModel()
        cfg = DistributedFilterConfig(n_particles=8, n_filters=2, n_exchange=0,
                                      seed=3)
        ok, reason = cohort_envelope(model, cfg)
        assert not ok and reason
        mgr = SessionManager()
        sess = mgr.attach("u", model, cfg)
        assert sess.solo is not None
        assert sess.envelope_reason == reason
        assert not mgr.cohorts

    def test_solo_fallback_matches_direct_filter(self):
        model = UNGMModel()
        cfg = DistributedFilterConfig(n_particles=8, n_filters=2, n_exchange=0,
                                      seed=3)
        meas = measurements(1, 5)
        mgr = SessionManager()
        mgr.attach("u", model, cfg)
        ests = []
        for k in range(5):
            mgr.submit("u", meas[0, k])
            (res,) = mgr.tick()
            ests.append(res.estimate)
        pf = DistributedParticleFilter(model, cfg)
        pf.initialize()
        want = np.array([np.asarray(pf.step(z), dtype=np.float64)
                         for z in meas[0]])
        np.testing.assert_array_equal(np.array(ests), want)
        assert mgr.counters["solo_steps"] == 5
