"""Admission, bounded ingress, batch-on-size stepping and stats readout."""

import numpy as np
import pytest

from repro.core import DistributedFilterConfig
from repro.sessions import QueueFullError, SessionManager
from tests.sessions.helpers import measurements, scalar_model


def cfg(seed=0, **kw):
    kw.setdefault("n_particles", 8)
    kw.setdefault("n_filters", 1)
    kw.setdefault("n_exchange", 0)
    return DistributedFilterConfig(seed=seed, **kw)


def manager_with(n=2, **kw):
    mgr = SessionManager(**kw)
    model = scalar_model()
    for i in range(n):
        mgr.attach(f"s{i}", model, cfg(seed=i))
    return mgr


class TestAdmission:
    def test_duplicate_attach_rejected(self):
        mgr = manager_with(1)
        with pytest.raises(ValueError, match="already attached"):
            mgr.attach("s0", scalar_model(), cfg())

    def test_unknown_session_rejected(self):
        mgr = manager_with(1)
        with pytest.raises(KeyError):
            mgr.submit("ghost", np.zeros(1))
        with pytest.raises(KeyError):
            mgr.detach("ghost")

    def test_readmit_still_in_cohort_rejected(self):
        mgr = manager_with(1)
        with pytest.raises(ValueError, match="still in a cohort"):
            SessionManager().readmit(mgr.sessions["s0"])

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="on_full"):
            SessionManager(on_full="explode")
        with pytest.raises(ValueError, match="max_queue"):
            SessionManager(max_queue=0)


class TestBoundedIngress:
    def test_full_queue_raises_by_default(self):
        mgr = manager_with(1, max_queue=2)
        mgr.submit("s0", np.zeros(1))
        mgr.submit("s0", np.zeros(1))
        with pytest.raises(QueueFullError, match="queue is full"):
            mgr.submit("s0", np.zeros(1))

    def test_drop_oldest_evicts_and_counts(self):
        mgr = manager_with(1, max_queue=2, on_full="drop_oldest")
        for v in (1.0, 2.0, 3.0):
            mgr.submit("s0", np.array([v]))
        assert mgr.counters["dropped"] == 1
        queued = [m[0][0] for m in mgr.sessions["s0"].queue]
        assert queued == [2.0, 3.0]

    def test_detach_drops_queued_observations(self):
        mgr = manager_with(2)
        mgr.submit("s0", np.zeros(1))
        sess = mgr.detach("s0")
        assert not sess.queue
        assert mgr.queued == 0


class TestStepping:
    def test_tick_steps_only_ready_sessions(self):
        mgr = manager_with(3)
        meas = measurements(3, 1)
        mgr.submit("s0", meas[0, 0])
        mgr.submit("s2", meas[2, 0])
        results = mgr.tick()
        assert sorted(r.session_id for r in results) == ["s0", "s2"]
        assert mgr.sessions["s1"].k == 0
        assert mgr.counters["cohort_steps"] == 1
        assert mgr.counters["session_steps"] == 2

    def test_batch_on_size_steps_eagerly(self):
        mgr = manager_with(3, batch_size=2)
        meas = measurements(3, 1)
        mgr.submit("s0", meas[0, 0])
        assert not mgr._results  # below threshold: nothing stepped yet
        mgr.submit("s1", meas[1, 0])
        results = mgr.drain()
        assert sorted(r.session_id for r in results) == ["s0", "s1"]
        assert mgr.queued == 0

    def test_pump_drains_everything(self):
        mgr = manager_with(2)
        meas = measurements(2, 3)
        for k in range(3):
            for i in range(2):
                mgr.submit(f"s{i}", meas[i, k])
        results = mgr.pump()
        assert len(results) == 6
        assert mgr.queued == 0
        ks = [r.k for r in results if r.session_id == "s0"]
        assert ks == [1, 2, 3]

    def test_results_carry_latency(self):
        mgr = manager_with(1)
        mgr.submit("s0", np.zeros(1))
        (res,) = mgr.tick()
        assert res.latency_s >= 0.0
        assert res.estimate.shape == (1,)


class TestStats:
    def test_stats_shape_and_counts(self):
        mgr = manager_with(2)
        meas = measurements(2, 2)
        for k in range(2):
            for i in range(2):
                mgr.submit(f"s{i}", meas[i, k])
            mgr.tick()
        stats = mgr.stats()
        assert stats["sessions"] == 2
        assert stats["cohorts"] == 1
        assert stats["solo_sessions"] == 0
        assert stats["queued"] == 0
        assert stats["counters"]["session_steps"] == 4
        lat = stats["latency"]
        assert lat["count"] == 4
        assert 0.0 <= lat["p50_s"] <= lat["p99_s"] <= lat["max_s"]
        assert set(stats["scratch"]) == {"hits", "misses", "evictions",
                                         "buffers", "bytes_held"}

    def test_reset_latency_restarts_window(self):
        mgr = manager_with(1)
        mgr.submit("s0", np.zeros(1))
        mgr.tick()
        assert mgr.stats()["latency"]["count"] == 1
        mgr.reset_latency()
        assert mgr.stats()["latency"]["count"] == 0

    def test_scratch_cap_is_plumbed_to_cohorts(self):
        mgr = manager_with(2, scratch_cap_bytes=1 << 20)
        cohort = next(iter(mgr.cohorts.values()))
        assert cohort._state.scratch_cap_bytes == 1 << 20
