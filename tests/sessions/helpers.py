"""Shared parity harness: a cohort-stepped session must be bit-identical to
the same (model, config) pair run alone on a DistributedParticleFilter."""

import numpy as np
import pytest

from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import LinearGaussianModel
from repro.prng import make_rng
from repro.sessions import SessionManager


def scalar_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def measurements(n_sessions, n_steps, meas_dim=1, seed=77):
    rng = make_rng("numpy", seed=seed)
    return rng.normal((n_sessions, n_steps, meas_dim))


def solo_run(model, cfg, meas):
    """Trajectory + final population of one filter stepped alone."""
    pf = DistributedParticleFilter(model, cfg)
    pf.initialize()
    ests = np.array([np.asarray(pf.step(z), dtype=np.float64) for z in meas])
    widths = pf._state.widths
    return {
        "estimates": ests,
        "states": pf.states.copy(),
        "log_weights": pf.log_weights.copy(),
        "widths": None if widths is None else widths.copy(),
    }


def cohort_run(model, cfgs, meas, manager=None):
    """The same sessions stepped through one SessionManager; returns a list
    of per-session dicts shaped like :func:`solo_run`'s."""
    mgr = manager or SessionManager()
    S, T = meas.shape[:2]
    for i, cfg in enumerate(cfgs):
        mgr.attach(f"s{i}", model, cfg)
    ests = [[] for _ in range(S)]
    for k in range(T):
        for i in range(S):
            mgr.submit(f"s{i}", meas[i, k])
        for res in mgr.tick():
            ests[int(res.session_id[1:])].append(res.estimate)
    out = []
    for i in range(S):
        sess = mgr.sessions[f"s{i}"]
        out.append({
            "estimates": np.array(ests[i]),
            "states": np.asarray(sess.states).copy(),
            "log_weights": np.asarray(sess.log_weights).copy(),
            "widths": None if sess.widths is None else np.asarray(sess.widths).copy(),
        })
    return out


def assert_bit_identical(got, want, label=""):
    np.testing.assert_array_equal(got["estimates"], want["estimates"],
                                  err_msg=f"{label}: estimates diverged")
    np.testing.assert_array_equal(got["states"], want["states"],
                                  err_msg=f"{label}: states diverged")
    np.testing.assert_array_equal(got["log_weights"], want["log_weights"],
                                  err_msg=f"{label}: log-weights diverged")
    assert (got["widths"] is None) == (want["widths"] is None)
    if want["widths"] is not None:
        np.testing.assert_array_equal(got["widths"], want["widths"],
                                      err_msg=f"{label}: widths diverged")
