"""Tests for the striped per-session generator behind cohort batching."""

import numpy as np
import pytest

from repro.prng import make_rng
from repro.sessions import CohortRNG, CohortStripeError


def bound_rng(n_sessions=3, block_rows=2, kind="numpy"):
    rng = CohortRNG()
    gens = [make_rng(kind, seed=100 + i) for i in range(n_sessions)]
    rng.bind(gens, block_rows)
    return rng, gens


def solo_gens(n_sessions=3, kind="numpy"):
    return [make_rng(kind, seed=100 + i) for i in range(n_sessions)]


class TestStriping:
    @pytest.mark.parametrize("method", ["uniform", "normal"])
    def test_batched_draw_is_stitched_solo_draws(self, method):
        rng, _ = bound_rng()
        solo = solo_gens()
        batched = getattr(rng, method)((6, 4))
        for j, g in enumerate(solo):
            expect = getattr(g, method)((2, 4))
            np.testing.assert_array_equal(batched[2 * j:2 * (j + 1)], expect)

    def test_successive_draws_preserve_per_session_order(self):
        # Each session consumes its own stream in solo order across calls
        # and across mixed uniform/normal draws.
        rng, _ = bound_rng()
        solo = solo_gens()
        a = rng.normal((6, 3))
        b = rng.uniform((6,))
        for j, g in enumerate(solo):
            np.testing.assert_array_equal(a[2 * j:2 * (j + 1)], g.normal((2, 3)))
            np.testing.assert_array_equal(b[2 * j:2 * (j + 1)], g.uniform((2,)))

    def test_dtype_matches_request(self):
        rng, _ = bound_rng()
        assert rng.normal((6, 2), dtype=np.float32).dtype == np.float32

    def test_philox_streams_stripe_too(self):
        rng, _ = bound_rng(kind="philox")
        solo = solo_gens(kind="philox")
        batched = rng.uniform((6,))
        for j, g in enumerate(solo):
            np.testing.assert_array_equal(batched[2 * j:2 * (j + 1)], g.uniform((2,)))


class TestStripeErrors:
    def test_wrong_leading_dim_raises(self):
        rng, _ = bound_rng()
        with pytest.raises(CohortStripeError, match="does not match"):
            rng.normal((5, 3))

    def test_scalar_shape_raises(self):
        rng, _ = bound_rng()
        with pytest.raises(CohortStripeError, match="no leading rows"):
            rng.uniform(())

    def test_spawn_is_refused(self):
        rng, _ = bound_rng()
        with pytest.raises(NotImplementedError):
            rng.spawn(0)


class TestScoping:
    def test_scoped_rows_draws_only_from_owning_sessions(self):
        # Sessions 0 and 2 resample (rows 0,1,4,5); session 1 must not
        # consume any stream state.
        rng, _ = bound_rng()
        solo = solo_gens()
        with rng.scoped_rows(np.array([0, 1, 4, 5])):
            sub = rng.uniform((4,))
        np.testing.assert_array_equal(sub[:2], solo[0].uniform((2,)))
        np.testing.assert_array_equal(sub[2:], solo[2].uniform((2,)))
        # A following full-width draw still aligns: session 1's stream is
        # exactly where a solo run that skipped the resample would be.
        full = rng.normal((6,))
        np.testing.assert_array_equal(full[2:4], solo[1].normal((2,)))

    def test_scoped_rows_restores_full_striping(self):
        rng, _ = bound_rng()
        with rng.scoped_rows(np.array([0, 1])):
            rng.uniform((2,))
        rng.uniform((6,))  # must not raise

    def test_delegating_forwards_verbatim(self):
        rng, _ = bound_rng()
        solo = solo_gens()
        with rng.delegating(1):
            flat = rng.uniform((5,))
        np.testing.assert_array_equal(flat, solo[1].uniform((5,)))
        # Delegation over: striping resumes.
        with pytest.raises(CohortStripeError):
            rng.uniform((5,))
