"""Attach/detach churn: membership changes must never disturb cohort-mates.

The satellite chaos test of the session layer — a session killed mid-cohort
(or joining late, or idling) leaves every other session's trace bit-identical
to an undisturbed run of that session alone.
"""

import numpy as np

from repro.core import DistributedFilterConfig
from repro.sessions import SessionManager
from tests.sessions.helpers import (
    assert_bit_identical,
    measurements,
    scalar_model,
    solo_run,
)


def base_cfg(seed, **kw):
    kw.setdefault("n_particles", 8)
    kw.setdefault("n_filters", 4)
    kw.setdefault("topology", "ring")
    kw.setdefault("n_exchange", 1)
    return DistributedFilterConfig(seed=seed, **kw)


def collect(mgr, ids, meas, steps, k0=0):
    """Submit+tick *steps* rounds for *ids*; returns per-id estimate lists."""
    ests = {i: [] for i in ids}
    for k in range(k0, k0 + steps):
        for i in ids:
            mgr.submit(i, meas[int(i[1:]), k])
        for res in mgr.tick():
            ests[res.session_id].append(res.estimate)
    return ests


def snapshot(mgr, sid, estimates):
    sess = mgr.sessions[sid]
    return {
        "estimates": np.array(estimates),
        "states": np.asarray(sess.states).copy(),
        "log_weights": np.asarray(sess.log_weights).copy(),
        "widths": None if sess.widths is None else np.asarray(sess.widths).copy(),
    }


class TestDetachChurn:
    def test_mid_run_kill_leaves_mates_bit_identical(self):
        model = scalar_model()
        cfgs = [base_cfg(seed=20 + i) for i in range(3)]
        meas = measurements(3, 7, seed=5)
        mgr = SessionManager()
        for i, cfg in enumerate(cfgs):
            mgr.attach(f"s{i}", model, cfg)
        ests = collect(mgr, ["s0", "s1", "s2"], meas, steps=3)
        killed = mgr.detach("s1")
        tail = collect(mgr, ["s0", "s2"], meas, steps=4, k0=3)
        for i in (0, 2):
            sid = f"s{i}"
            got = snapshot(mgr, sid, ests[sid] + tail[sid])
            want = solo_run(model, cfgs[i], meas[i])
            assert_bit_identical(got, want, label=f"survivor {sid}")
        # The victim's stored population matches its own solo run at the
        # step it was killed.
        want1 = solo_run(model, cfgs[1], meas[1, :3])
        got1 = {"estimates": np.array(ests["s1"]), "states": killed.states,
                "log_weights": killed.log_weights, "widths": killed.widths}
        assert_bit_identical(got1, want1, label="victim")
        assert killed.k == 3

    def test_detached_session_reattaches_and_continues_its_trace(self):
        model = scalar_model()
        cfgs = [base_cfg(seed=30 + i) for i in range(2)]
        meas = measurements(2, 6, seed=6)
        mgr = SessionManager()
        for i, cfg in enumerate(cfgs):
            mgr.attach(f"s{i}", model, cfg)
        head = collect(mgr, ["s0", "s1"], meas, steps=2)
        moved = mgr.detach("s1")
        # Re-admit the same FilterSession object elsewhere: population, RNG
        # state and step clock travel with it.
        other = SessionManager()
        other.readmit(moved)
        tail = collect(other, ["s1"], meas, steps=4, k0=2)
        got = snapshot(other, "s1", head["s1"] + tail["s1"])
        want = solo_run(model, cfgs[1], meas[1])
        assert_bit_identical(got, want, label="reattached")

    def test_empty_cohort_is_dropped(self):
        model = scalar_model()
        mgr = SessionManager()
        mgr.attach("a", model, base_cfg(seed=1))
        mgr.attach("b", model, base_cfg(seed=2))
        mgr.detach("a")
        assert len(mgr.cohorts) == 1
        mgr.detach("b")
        assert not mgr.cohorts
        assert mgr.counters["detached"] == 2


class TestLateAttachAndIdling:
    def test_late_attach_disturbs_nobody(self):
        model = scalar_model()
        cfgs = [base_cfg(seed=40 + i) for i in range(3)]
        meas = measurements(3, 6, seed=7)
        mgr = SessionManager()
        mgr.attach("s0", model, cfgs[0])
        mgr.attach("s1", model, cfgs[1])
        head = collect(mgr, ["s0", "s1"], meas, steps=2)
        mgr.attach("s2", model, cfgs[2])
        tail = collect(mgr, ["s0", "s1", "s2"], meas, steps=4, k0=2)
        for i, k_from in ((0, 0), (1, 0), (2, 2)):
            sid = f"s{i}"
            ests = head.get(sid, []) + tail[sid]
            got = snapshot(mgr, sid, ests)
            want = solo_run(model, cfgs[i], meas[i, k_from:])
            assert_bit_identical(got, want, label=f"late-attach {sid}")

    def test_idle_session_keeps_parity_under_partial_ticks(self):
        # s1 only observes every other round: the cohort steps a sub-slab
        # on the off rounds, and both sessions still match their solo runs.
        model = scalar_model()
        cfgs = [base_cfg(seed=50 + i) for i in range(2)]
        meas = measurements(2, 8, seed=8)
        mgr = SessionManager()
        for i, cfg in enumerate(cfgs):
            mgr.attach(f"s{i}", model, cfg)
        ests = {"s0": [], "s1": []}
        seen1 = []
        for k in range(8):
            mgr.submit("s0", meas[0, k])
            if k % 2 == 0:
                mgr.submit("s1", meas[1, k])
                seen1.append(k)
            for res in mgr.tick():
                ests[res.session_id].append(res.estimate)
        got0 = snapshot(mgr, "s0", ests["s0"])
        assert_bit_identical(got0, solo_run(model, cfgs[0], meas[0]), label="busy")
        got1 = snapshot(mgr, "s1", ests["s1"])
        assert_bit_identical(got1, solo_run(model, cfgs[1], meas[1, seen1]),
                             label="idler")
