"""Checkpoint/resume acceptance: bit-identical golden traces on every backend.

The contract under test: saving at a step boundary and resuming — in a fresh
process tree — produces estimates *bit-identical* to the uninterrupted run,
including runs whose topology was healed and whose workers were respawned
mid-flight. Plus the transport failure paths around checkpointing: SIGKILL
between scatter and poll is detected by process liveness (fast, not at the
deadline), and shm segments are reclaimed when a supervised run aborts.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.backends import MultiprocessDistributedParticleFilter
from repro.backends.sequential import SequentialDistributedParticleFilter
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import LinearGaussianModel
from repro.prng import make_rng
from repro.resilience import (
    CheckpointError,
    FaultPlan,
    Supervisor,
    WorkerFailure,
    read_manifest,
)


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, topology="ring", n_exchange=1,
                estimator="weighted_mean", seed=3)
    base.update(kw)
    return DistributedFilterConfig(**base)


def measurements(n_steps, seed=4):
    model = lg_model()
    truth = model.simulate(n_steps, make_rng("numpy", seed=seed))
    return np.asarray(truth.measurements, dtype=np.float64)


def drive(pf, meas, start=0):
    return np.stack([pf.step(meas[k]) for k in range(start, meas.shape[0])])


class TestSingleProcessGoldenTrace:
    @pytest.mark.parametrize("factory", [
        DistributedParticleFilter, SequentialDistributedParticleFilter,
    ], ids=["vectorized", "sequential"])
    def test_resume_is_bit_identical(self, factory, tmp_path):
        model, meas, cut = lg_model(), measurements(14), 7
        golden = drive(factory(model, cfg()), meas)

        pf = factory(model, cfg())
        head = drive(pf, meas[:cut])
        manifest = pf.save_checkpoint(str(tmp_path / "run.ckpt"))
        assert manifest["meta"]["k"] == cut and manifest["meta"]["boundary"]

        pf2 = factory(model, cfg())
        pf2.load_checkpoint(str(tmp_path / "run.ckpt"))
        assert pf2.k == cut
        tail = drive(pf2, meas, start=cut)
        np.testing.assert_array_equal(np.vstack([head, tail]), golden)

    def test_backend_mismatch_rejected(self, tmp_path):
        model, meas = lg_model(), measurements(3)
        pf = DistributedParticleFilter(model, cfg())
        drive(pf, meas)
        pf.save_checkpoint(str(tmp_path / "vec.ckpt"))
        with pytest.raises(CheckpointError, match="backend"):
            SequentialDistributedParticleFilter(model, cfg()).load_checkpoint(
                str(tmp_path / "vec.ckpt"))

    def test_config_mismatch_rejected(self, tmp_path):
        model, meas = lg_model(), measurements(3)
        pf = DistributedParticleFilter(model, cfg())
        drive(pf, meas)
        pf.save_checkpoint(str(tmp_path / "run.ckpt"))
        other = DistributedParticleFilter(model, cfg(seed=99))
        with pytest.raises(CheckpointError, match="configuration"):
            other.load_checkpoint(str(tmp_path / "run.ckpt"))

    def test_checkpoint_before_init_rejected(self, tmp_path):
        pf = DistributedParticleFilter(lg_model(), cfg())
        with pytest.raises(CheckpointError):
            pf.save_checkpoint(str(tmp_path / "run.ckpt"))


@pytest.mark.parametrize("transport", ["pipe", "shm"])
class TestMultiprocessGoldenTrace:
    def test_resume_is_bit_identical(self, transport, tmp_path):
        model, meas, cut = lg_model(), measurements(12), 6
        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=2, transport=transport) as pf:
            golden = drive(pf, meas)

        path = str(tmp_path / "run.ckpt")
        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=2, transport=transport) as pf:
            head = drive(pf, meas[:cut])
            manifest = pf.save_checkpoint(path)
        assert manifest["meta"]["k"] == cut
        assert manifest["meta"]["transport"] == transport

        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=2, transport=transport) as pf2:
            pf2.load_checkpoint(path)
            assert pf2.k == cut
            assert pf2.report.checkpoints_restored == 1
            tail = drive(pf2, meas, start=cut)
        np.testing.assert_array_equal(np.vstack([head, tail]), golden)

    def test_resume_with_respawned_worker_is_bit_identical(self, transport, tmp_path):
        # The hard case: a worker is killed and respawned mid-flight BEFORE
        # the checkpoint. Resuming must reproduce the uninterrupted chaos
        # run bit-for-bit — which exercises the seed-tag (respawn lineage)
        # and healed-topology state in the checkpoint.
        model, meas, cut = lg_model(), measurements(12), 7
        plan = FaultPlan(seed=0).kill(worker=1, step=3)

        def mk():
            return MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=4, transport=transport, fault_plan=plan,
                on_failure="heal", respawn_dead=True, recv_timeout=30.0)

        with mk() as pf:
            golden = drive(pf, meas)
            assert pf.report.respawns == 1  # the fault actually fired

        path = str(tmp_path / "chaos.ckpt")
        with mk() as pf:
            head = drive(pf, meas[:cut])
            assert pf.report.respawns == 1
            manifest = pf.save_checkpoint(path)
        assert manifest["meta"]["seed_tags"][1] == 1  # bumped lineage saved

        with mk() as pf2:
            pf2.load_checkpoint(path)
            assert pf2.report.respawns == 1  # report restored from manifest
            tail = drive(pf2, meas, start=cut)
        np.testing.assert_array_equal(np.vstack([head, tail]), golden)

    def test_resume_with_dead_block_stays_degraded(self, transport, tmp_path):
        # Healed-but-not-respawned topology: the dead block must stay dead
        # (and NaN) across the resume, with the exchange routed around it.
        model, meas, cut = lg_model(), measurements(10), 6
        plan = FaultPlan(seed=0).kill(worker=1, step=2)

        def mk(**kw):
            return MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=4, transport=transport,
                on_failure="heal", recv_timeout=30.0, **kw)

        with mk(fault_plan=plan) as pf:
            golden = drive(pf, meas)
            dead_filters = sorted(pf._healer.dead)

        path = str(tmp_path / "degraded.ckpt")
        with mk(fault_plan=plan) as pf:
            head = drive(pf, meas[:cut])
            pf.save_checkpoint(path)

        with mk() as pf2:  # no fault plan: the checkpoint carries the damage
            pf2.load_checkpoint(path)
            assert pf2.dead_workers == (1,)
            assert sorted(pf2._healer.dead) == dead_filters
            tail = drive(pf2, meas, start=cut)
        np.testing.assert_array_equal(np.vstack([head, tail]), golden)

    def test_worker_count_mismatch_rejected(self, transport, tmp_path):
        model, meas = lg_model(), measurements(3)
        path = str(tmp_path / "run.ckpt")
        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=2, transport=transport) as pf:
            drive(pf, meas)
            pf.save_checkpoint(path)
        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=4, transport=transport) as pf2:
            with pytest.raises(CheckpointError, match="workers"):
                pf2.load_checkpoint(path)


class TestTransportFailurePaths:
    def test_sigkill_between_scatter_and_poll_detected_by_liveness(self):
        # The master must notice the corpse via process liveness / EOF, long
        # before the 30 s reply deadline would fire.
        model, meas = lg_model(), measurements(6)
        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=2, on_failure="heal",
                recv_timeout=30.0) as pf:
            pf.step(meas[0])
            os.kill(pf._procs[1].pid, signal.SIGKILL)
            pf._procs[1].join(timeout=5)
            t0 = time.perf_counter()
            pf.step(meas[1])
            elapsed = time.perf_counter() - t0
            assert elapsed < 10.0  # detected, not waited out
            assert pf.dead_workers == (1,)
            assert pf.report.failures[0].kind == "crash"

    def test_shm_segments_reclaimed_on_supervised_abort(self, tmp_path):
        # on_failure="raise" + checkpoint_on_abort: the typed error still
        # propagates, but the dead block's shm segments are reclaimed and a
        # mid-round (non-boundary) rescue checkpoint lands on disk first.
        model, meas = lg_model(), measurements(6)
        path = str(tmp_path / "abort.ckpt")
        plan = FaultPlan(seed=0).kill(worker=1, step=2)
        sup = Supervisor(beat_timeout=0.2, max_missed=2, checkpoint_on_abort=path)
        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=2, transport="shm", fault_plan=plan,
                on_failure="raise", recv_timeout=30.0, supervisor=sup) as pf:
            with pytest.raises(WorkerFailure):
                for k in range(meas.shape[0]):
                    pf.step(meas[k])
            assert pf.report.segments_reclaimed > 0
        manifest = read_manifest(path)
        assert manifest["meta"]["boundary"] is False
        assert manifest["meta"]["backend"] == "multiprocess"
        assert any(e["kind"] == "checkpoint_abort" for e in sup.event_log())

    def test_abort_checkpoint_is_resumable(self, tmp_path):
        # A checkpoint-on-abort rescue file restores into a fresh instance
        # (deterministic resume; just not a golden-trace boundary).
        model, meas = lg_model(), measurements(8)
        path = str(tmp_path / "abort.ckpt")
        plan = FaultPlan(seed=0).kill(worker=1, step=2)
        sup = Supervisor(beat_timeout=0.2, max_missed=2, checkpoint_on_abort=path)
        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=2, fault_plan=plan,
                on_failure="raise", recv_timeout=30.0, supervisor=sup) as pf:
            with pytest.raises(WorkerFailure):
                drive(pf, meas)
        with MultiprocessDistributedParticleFilter(
                model, cfg(), n_workers=2, on_failure="heal",
                recv_timeout=30.0) as pf2:
            pf2.load_checkpoint(path)
            assert pf2.dead_workers == (1,)  # the aborted run's damage
            est = drive(pf2, meas, start=pf2.k)  # completes degraded
            assert np.isfinite(est).all()
