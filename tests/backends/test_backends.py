"""Tests for the sequential reference and device-simulated backends."""

import numpy as np
import pytest

from repro.backends import DeviceSimulatedFilter, SequentialDistributedParticleFilter
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, estimator="weighted_mean", seed=3)
    base.update(kw)
    return DistributedFilterConfig(**base)


class TestSequentialReference:
    def test_tracks_linear_system(self):
        model = lg_model()
        truth = model.simulate(25, make_rng("numpy", seed=0))
        ref = SequentialDistributedParticleFilter(model, cfg())
        run = run_filter(ref, model, truth)
        assert run.mean_error(warmup=8) < 0.3

    @pytest.mark.parametrize("topology", ["ring", "all-to-all", "none"])
    def test_topologies(self, topology):
        model = lg_model()
        truth = model.simulate(15, make_rng("numpy", seed=1))
        ref = SequentialDistributedParticleFilter(model, cfg(topology=topology))
        assert np.isfinite(run_filter(ref, model, truth).errors).all()

    def test_statistically_matches_vectorized(self):
        # The oracle check of Section VIII-A: reference and optimized
        # implementations must deliver the same estimation accuracy.
        model = lg_model()
        ref_errs, vec_errs = [], []
        for r in range(4):
            truth = model.simulate(30, make_rng("numpy", seed=100 + r))
            ref = SequentialDistributedParticleFilter(model, cfg(seed=r))
            vec = DistributedParticleFilter(model, cfg(seed=r))
            ref_errs.append(run_filter(ref, model, truth).mean_error(warmup=10))
            vec_errs.append(run_filter(vec, model, truth).mean_error(warmup=10))
        assert abs(np.mean(ref_errs) - np.mean(vec_errs)) < 0.06

    def test_exchange_improves_over_isolated(self):
        model = lg_model()
        errs = {}
        for topo, t in (("ring", 2), ("none", 0)):
            acc = 0.0
            for r in range(3):
                truth = model.simulate(25, make_rng("numpy", seed=50 + r))
                ref = SequentialDistributedParticleFilter(model, cfg(n_particles=8, topology=topo, n_exchange=t, seed=r))
                acc += run_filter(ref, model, truth).mean_error(warmup=8)
            errs[topo] = acc / 3
        assert errs["ring"] <= errs["none"] * 1.2


class TestDeviceSimulatedBackend:
    def test_estimates_match_inner_filter(self):
        model = lg_model()
        truth = model.simulate(10, make_rng("numpy", seed=2))
        inner_a = DistributedParticleFilter(model, cfg())
        inner_b = DistributedParticleFilter(model, cfg())
        sim = DeviceSimulatedFilter(inner_b, "gtx-580")
        a = run_filter(inner_a, model, truth).estimates
        b = run_filter(sim, model, truth).estimates
        np.testing.assert_array_equal(a, b)

    def test_simulated_time_accumulates(self):
        model = lg_model()
        sim = DeviceSimulatedFilter(DistributedParticleFilter(model, cfg()), "gtx-580")
        sim.initialize()
        sim.step(np.array([0.0]))
        sim.step(np.array([0.0]))
        assert sim.simulated_seconds == pytest.approx(2 * sim.round_cost.total_seconds)
        assert sim.simulated_update_rate_hz > 0
        assert abs(sum(sim.simulated_breakdown().values()) - 1.0) < 1e-9

    def test_platform_object_accepted(self):
        from repro.device import get_platform

        model = lg_model()
        sim = DeviceSimulatedFilter(DistributedParticleFilter(model, cfg()), get_platform("hd-7970"))
        assert sim.device.name.endswith("7970")

    def test_unknown_platform_rejected(self):
        model = lg_model()
        with pytest.raises(ValueError):
            DeviceSimulatedFilter(DistributedParticleFilter(model, cfg()), "gtx-9999")
