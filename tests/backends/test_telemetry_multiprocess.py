"""Multiprocess telemetry: merged timelines, fallback counting, isolation.

The master's phase-1 header tells workers whether to trace; workers ship
their spans back in the phase-2 reply, and the master re-bases them onto its
own clock — so one Chrome trace shows the master plus every worker with
stage/kernel spans on an aligned timeline, for both transports. Worker-side
hook failures surface on the master's ``telemetry_errors``; shm payloads
that bypass the slab are counted in ``transport_fallbacks``.
"""

import warnings

import numpy as np
import pytest

from repro.backends import MultiprocessDistributedParticleFilter
from repro.core import DistributedFilterConfig
from repro.models import LinearGaussianModel
from repro.resilience import FaultPlan
from repro.telemetry import chrome_trace, validate_trace_events


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, estimator="weighted_mean",
                seed=3, n_exchange=2)
    base.update(kw)
    return DistributedFilterConfig(**base)


@pytest.mark.parametrize("transport", ["pipe", "shm"])
class TestMergedTimeline:
    def test_one_timeline_master_plus_workers(self, transport):
        n_workers, steps = 4, 3
        with MultiprocessDistributedParticleFilter(
            lg_model(), cfg(), n_workers=n_workers, transport=transport
        ) as pf:
            pf.tracer.enabled = True
            for k in range(steps):
                pf.step(np.array([0.1 * k]))
            spans, labels = list(pf.tracer.spans), dict(pf.tracer.labels)
            counters = dict(pf.tracer.counters)

        # One process track per participant, named.
        pids = {s.pid for s in spans}
        assert len(pids) == n_workers + 1
        assert set(labels.values()) == {"master"} | {
            f"worker-{w}" for w in range(n_workers)}

        # Master contributes step + estimate/exchange stages; workers
        # contribute their local stages and kernel spans.
        master_pid = next(p for p, name in labels.items() if name == "master")
        master_names = {s.name for s in spans if s.pid == master_pid}
        assert {"estimate", "exchange"} <= master_names
        assert any(s.kind == "step" for s in spans if s.pid == master_pid)
        worker_stage = {s.name for s in spans
                        if s.pid != master_pid and s.kind == "stage"}
        assert {"sampling", "heal", "sort", "resample"} <= worker_stage
        assert any(s.kind == "kernel" for s in spans if s.pid != master_pid)

        # Clock alignment: every worker span falls inside the master's run
        # window (steps take milliseconds; misaligned clocks would be off by
        # the process uptime, i.e. seconds).
        t0 = min(s.start for s in spans if s.pid == master_pid)
        t1 = max(s.end for s in spans if s.pid == master_pid)
        for s in spans:
            assert t0 - 0.5 <= s.start and s.end <= t1 + 0.5, (s.name, s.pid)

        # And the whole thing is a valid Chrome trace.
        validate_trace_events(chrome_trace(spans, counters, labels))

    def test_tracing_does_not_change_estimates(self, transport):
        def run(trace):
            with MultiprocessDistributedParticleFilter(
                lg_model(), cfg(), n_workers=2, transport=transport
            ) as pf:
                pf.tracer.enabled = trace
                return np.array([pf.step(np.array([0.1 * k])) for k in range(4)])

        np.testing.assert_array_equal(run(False), run(True))

    def test_disabled_tracer_ships_no_spans(self, transport):
        with MultiprocessDistributedParticleFilter(
            lg_model(), cfg(), n_workers=2, transport=transport
        ) as pf:
            for k in range(2):
                pf.step(np.array([0.1 * k]))
            assert pf.tracer.spans == []
            # Legacy accessors still populated from the phase-2 replies.
            assert pf.timer.seconds and pf.kernel_seconds


class TestWorkerHookIsolation:
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_raising_worker_hook_surfaces_on_master(self, transport, monkeypatch):
        # fork start method: patching the hook class here patches it inside
        # the workers too.
        from repro.resilience.monitor import HealMonitorHook

        def boom(self, name, state):
            raise RuntimeError("observer broke in the worker")

        monkeypatch.setattr(HealMonitorHook, "on_stage_start", boom)
        clean = None
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with MultiprocessDistributedParticleFilter(
                lg_model(), cfg(), n_workers=2, transport=transport
            ) as pf:
                ests = np.array([pf.step(np.array([0.1 * k])) for k in range(3)])
                assert pf.telemetry_errors > 0
                assert pf.tracer.counters["telemetry_errors"] > 0
        monkeypatch.undo()
        with MultiprocessDistributedParticleFilter(
            lg_model(), cfg(), n_workers=2, transport=transport
        ) as pf:
            clean = np.array([pf.step(np.array([0.1 * k])) for k in range(3)])
            assert pf.telemetry_errors == 0
        # The raising observer never perturbed the filtering output.
        np.testing.assert_array_equal(ests, clean)


class TestTransportFallbackCounting:
    def test_healed_wider_torus_falls_back_and_is_counted(self):
        # recv slabs are sized to the unhealed torus (4 neighbours); killing
        # a block and bridging around it gives survivors a 5th neighbour, so
        # the routed width outgrows recv_cap and phase-2 goes inline.
        config = cfg(n_filters=16, topology="torus")
        plan = FaultPlan(seed=0).kill(worker=1, step=2)
        kw = dict(n_workers=4, fault_plan=plan, on_failure="heal",
                  recv_timeout=15.0)
        with MultiprocessDistributedParticleFilter(
            lg_model(), config, transport="shm", **kw
        ) as pf:
            for k in range(6):
                pf.step(np.array([0.1 * k]))
            table, _ = pf._healer.neighbor_table()
            assert table.shape[1] > 4  # healed wider than the slab capacity
            assert pf.transport_fallbacks > 0
            assert pf.tracer.counters["transport_fallbacks"] \
                == pf.transport_fallbacks
            # The channel-level counters agree with the master's total.
            chan_total = sum(c.fallbacks for c in pf._chans if c is not None)
            assert chan_total == pf.transport_fallbacks

        # The pipe transport's inline form is the native path, never a
        # fallback.
        with MultiprocessDistributedParticleFilter(
            lg_model(), config, transport="pipe", **kw
        ) as pf:
            for k in range(6):
                pf.step(np.array([0.1 * k]))
            assert pf.transport_fallbacks == 0
            assert "transport_fallbacks" not in pf.tracer.counters

    def test_no_fallbacks_on_the_unhealed_fast_path(self):
        with MultiprocessDistributedParticleFilter(
            lg_model(), cfg(), n_workers=2, transport="shm"
        ) as pf:
            for k in range(4):
                pf.step(np.array([0.1 * k]))
            assert pf.transport_fallbacks == 0
