"""Unit tests for the data-plane transports (slab layout + shm channels)."""

import multiprocessing
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.backends.transport import (
    PipeTransport,
    ShmMasterChannel,
    SharedMemoryTransport,
    SlabLayout,
    make_transport,
)

CTX = multiprocessing.get_context("fork")


def small_layout(**kw):
    base = dict(n_block=2, n_particles=8, state_dim=3, t_cap=4, recv_cap=8,
                meas_cap=4, ctrl_cap=2, dtype=np.float32)
    base.update(kw)
    return SlabLayout(**base)


class TestSlabLayout:
    def test_field_shapes_and_dtypes(self):
        lay = small_layout()
        f = lay.fields
        assert f["send_states"].shape == (2, 4, 3)
        assert f["send_states"].dtype == np.float32
        assert f["send_logw"].shape == (2, 4)
        assert f["send_logw"].dtype == np.float64  # log-weights always f64
        assert f["recv_states"].shape == (2, 8, 3)
        # One estimate partial per sub-filter row: [sum w*x | sum w | shift].
        assert f["partial"].shape == (2, 3 + 2)
        assert f["meas"].shape == (4,) and f["ctrl"].shape == (2,)

    def test_offsets_are_aligned_and_disjoint(self):
        lay = small_layout()
        fields = sorted(lay.fields.values(), key=lambda f: f.offset)
        end = 0
        for f in fields:
            assert f.offset % 64 == 0
            assert f.offset >= end  # no overlap
            end = f.offset + int(np.prod(f.shape)) * f.dtype.itemsize
        assert lay.nbytes >= end
        # Two payload buffers plus the out-of-band heartbeat tail.
        assert lay.segment_nbytes == 2 * lay.nbytes + 64

    def test_double_buffers_do_not_alias(self):
        lay = small_layout()
        buf = bytearray(lay.segment_nbytes)
        v0, v1 = lay.views(buf, 0), lay.views(buf, 1)
        v0["send_logw"][...] = 7.0
        v1["send_logw"][...] = -3.0
        assert (np.asarray(v0["send_logw"]) == 7.0).all()
        assert (np.asarray(v1["send_logw"]) == -3.0).all()

    def test_views_share_the_buffer(self):
        lay = small_layout()
        buf = bytearray(lay.segment_nbytes)
        lay.views(buf, 0)["best_logw"][...] = 5.0
        assert (np.asarray(lay.views(buf, 0)["best_logw"]) == 5.0).all()


class TestMakeTransport:
    def test_by_name(self):
        assert isinstance(make_transport("pipe"), PipeTransport)
        assert isinstance(make_transport("shm"), SharedMemoryTransport)
        assert isinstance(make_transport("shared_memory"), SharedMemoryTransport)

    def test_by_class_and_instance(self):
        assert isinstance(make_transport(PipeTransport), PipeTransport)
        inst = SharedMemoryTransport()
        assert make_transport(inst) is inst

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown transport"):
            make_transport("carrier-pigeon")


class TestShmChannelRoundtrip:
    """Master and worker channel ends exercised inside one process."""

    def make_pair(self, **kw):
        lay = small_layout(**kw)
        master = ShmMasterChannel(CTX, lay)
        return master, master.worker, lay

    def fill_phase1_reply(self, worker, lay, k, seed=0):
        rng = np.random.default_rng(seed)
        B, t, d = lay.n_block, lay.t_cap, lay.state_dim
        send_s = rng.normal(size=(B, t, d)).astype(lay.dtype)
        send_w = rng.normal(size=(B, t))
        best_s = rng.normal(size=(B, d)).astype(lay.dtype)
        best_w = rng.normal(size=(B,))
        # Per-sub-filter estimate partial rows: [sum w*x | sum w | shift].
        partial = rng.normal(size=(B, d + 2))
        worker.reply_phase1(k, send_s, send_w, best_s, best_w, partial, {"sanitized": 2})
        return send_s, send_w, best_s, best_w, partial

    def test_phase1_roundtrip_through_slab(self):
        master, worker, lay = self.make_pair()
        try:
            z = np.array([0.5, -1.0, 2.0])
            master.send_phase1(z, None, k=0, t=lay.t_cap)
            kind, z2, u2, k, t, trace, widths = worker.recv()
            assert kind == "phase1" and k == 0 and t == lay.t_cap
            assert trace is False
            assert widths is None
            np.testing.assert_array_equal(z2, z)
            assert u2 is None

            sent = self.fill_phase1_reply(worker, lay, k=0)
            msg = master.conn.recv()
            send_s, send_w, best_s, best_w, partial, heal, _ = \
                master.decode_phase1(msg, lay.t_cap)
            np.testing.assert_array_equal(send_s, sent[0])
            np.testing.assert_array_equal(send_w, sent[1])
            np.testing.assert_array_equal(best_s, sent[2])
            np.testing.assert_array_equal(best_w, sent[3])
            np.testing.assert_array_equal(partial, sent[4])
            assert heal == {"sanitized": 2}
        finally:
            master.close()

    def test_oversize_and_non_f64_measurements_go_inline(self):
        master, worker, lay = self.make_pair(meas_cap=2)
        try:
            big = np.arange(5, dtype=np.float64)   # > meas_cap
            f32 = np.array([1.0], dtype=np.float32)  # non-f64 keeps exact bits inline
            fell_back = master.send_phase1(big, f32, k=0, t=1)
            assert fell_back == 2 and master.fallbacks == 2
            _, z2, u2, _, _, _, _ = worker.recv()
            np.testing.assert_array_equal(z2, big)
            assert u2.dtype == np.float32
            np.testing.assert_array_equal(u2, f32)
        finally:
            master.close()

    def test_phase2_through_slab_and_width_zero(self):
        master, worker, lay = self.make_pair()
        try:
            width = lay.recv_cap - 2
            states = np.ones((lay.n_block, width, lay.state_dim), dtype=lay.dtype)
            logw = np.full((lay.n_block, width), -2.0)
            master.send_phase2(0, states, logw)
            kind, s2, w2 = worker.recv()
            assert kind == "phase2"
            np.testing.assert_array_equal(s2, states)
            np.testing.assert_array_equal(w2, logw)

            master.send_phase2(1, None, None)
            assert worker.recv() == ("phase2", None, None)
        finally:
            master.close()

    def test_phase2_oversize_falls_back_inline(self):
        master, worker, lay = self.make_pair(recv_cap=2)
        try:
            width = 5  # > recv_cap: healed-topology growth
            assert master.phase2_buffers(0, width) is None
            states = np.ones((lay.n_block, width, lay.state_dim), dtype=lay.dtype)
            logw = np.zeros((lay.n_block, width))
            master.send_phase2(0, states, logw)
            kind, s2, w2 = worker.recv()
            assert kind == "phase2"
            np.testing.assert_array_equal(s2, states)
        finally:
            master.close()

    def test_phase2_buffers_are_slab_views(self):
        master, worker, lay = self.make_pair()
        try:
            bufs = master.phase2_buffers(0, lay.recv_cap)
            assert bufs[0].flags.c_contiguous and bufs[1].flags.c_contiguous
            bufs[0][...] = 3.0
            master.send_phase2_ready(0, lay.recv_cap)
            _, s2, _ = worker.recv()
            assert (np.asarray(s2) == 3.0).all()  # same memory, no copy
        finally:
            master.close()

    def test_stale_ack_detected(self):
        master, worker, lay = self.make_pair()
        try:
            master.send_phase1(None, None, k=0, t=1)
            with pytest.raises(RuntimeError, match="stale slab ack"):
                master.decode_phase1(("p1", 0, 999, {}), 1)
            with pytest.raises(RuntimeError, match="expected p1 ack"):
                master.decode_phase1(("bogus",), 1)
        finally:
            master.close()


class TestShmReclaim:
    def test_reclaim_is_idempotent_and_unlinks(self):
        master = ShmMasterChannel(CTX, small_layout())
        name = master._seg.name
        assert master.n_segments == 1
        assert master.reclaim() == 1
        assert master.n_segments == 0
        assert master.reclaim() == 0
        assert master.close() == 0
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_reclaims_once(self):
        master = ShmMasterChannel(CTX, small_layout())
        assert master.close() == 1
        assert master.close() == 0

    def test_pipe_channel_reclaims_nothing(self):
        transport = PipeTransport()
        m, w = transport.channel_pair(CTX, small_layout())
        assert m.n_segments == 0
        assert m.close() == 0
        w.close()
