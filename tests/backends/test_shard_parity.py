"""Shard parity: N shards over any transport == one process, bit for bit.

The contract the whole shard layer hangs on: with ``rng_streams="filter"``
every sub-filter consumes its own private stream in a partition-invariant
order, the shard-aware exchange packs exactly the particles the dense
exchange would have routed, and the global estimate is reduced from
per-filter partials that do not depend on which worker computed them.
Consequently the estimates, final populations, log-weights, and adaptive
widths of a sharded run are **bitwise identical** to the single-process
golden trace — including across transports, with the cut-only exchange on
or off, and through a kill → rebalance → checkpoint → elastic-resume chaos
history.
"""

import numpy as np
import pytest

from repro.backends import MultiprocessDistributedParticleFilter
from repro.core import DistributedFilterConfig
from repro.models import LinearGaussianModel
from repro.prng import make_rng
from repro.resilience import FaultPlan
from repro.resilience.checkpoint import CheckpointError


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, estimator="weighted_mean",
                seed=3, n_exchange=2, rng_streams="filter")
    base.update(kw)
    return DistributedFilterConfig(**base)


def run(config, meas, n_workers, transport="pipe", **kw):
    with MultiprocessDistributedParticleFilter(
            lg_model(), config, n_workers=n_workers, transport=transport, **kw
    ) as pf:
        ests = np.array([pf.step(z) for z in meas])
        states, logw = pf.gather_population()
        widths = None if pf._widths is None else pf._widths.copy()
        diag = pf.diagnostics()
    return ests, states, logw, widths, diag


def assert_bitwise(a, b):
    np.testing.assert_array_equal(a[0], b[0])  # estimates
    np.testing.assert_array_equal(a[1], b[1])  # states
    np.testing.assert_array_equal(a[2], b[2])  # log-weights
    if a[3] is not None or b[3] is not None:
        np.testing.assert_array_equal(a[3], b[3])  # widths


class TestShardInvariance:
    def test_two_shard_tcp_matches_single_process_golden(self):
        meas = lg_model().simulate(12, make_rng("numpy", seed=1)).measurements
        golden = run(cfg(), meas, n_workers=1)
        tcp = run(cfg(), meas, n_workers=2, transport="tcp")
        assert_bitwise(golden, tcp)
        # The cut-only exchange actually engaged and metered its traffic.
        assert tcp[4]["shard"]["exchange_on"]
        assert tcp[4]["shard"]["cut_bytes"] > 0
        assert tcp[4]["transport_bytes"]["sent"] > 0

    def test_worker_count_is_invisible_at_filter_granularity(self):
        meas = lg_model().simulate(10, make_rng("numpy", seed=2)).measurements
        runs = [run(cfg(), meas, n_workers=w) for w in (1, 2, 4, 8)]
        for other in runs[1:]:
            assert_bitwise(runs[0], other)

    def test_shard_exchange_on_equals_off_on_pipe(self):
        meas = lg_model().simulate(10, make_rng("numpy", seed=3)).measurements
        off = run(cfg(), meas, n_workers=2, shard_exchange="off")
        on = run(cfg(), meas, n_workers=2, shard_exchange="on")
        assert_bitwise(off, on)
        assert not off[4]["shard"]["exchange_on"]
        assert on[4]["shard"]["cut_particles"] > 0

    def test_adaptive_allocation_shards_bitwise(self):
        meas = lg_model().simulate(12, make_rng("numpy", seed=4)).measurements
        config = cfg(allocation="ess", n_particles=32)
        golden = run(config, meas, n_workers=1)
        tcp = run(config, meas, n_workers=2, transport="tcp")
        assert_bitwise(golden, tcp)
        assert tcp[3] is not None  # widths actually in play

    def test_cut_bytes_scale_with_cut_not_particles(self):
        meas = lg_model().simulate(6, make_rng("numpy", seed=5)).measurements
        small = run(cfg(n_particles=16), meas, 2, shard_exchange="on")
        big = run(cfg(n_particles=64), meas, 2, shard_exchange="on")
        wide = run(cfg(n_filters=16), meas, 4, shard_exchange="on")
        # 4x the particles, same cut -> same wire bytes.
        assert small[4]["shard"]["cut_bytes"] == big[4]["shard"]["cut_bytes"]
        # Twice the boundaries -> strictly more wire bytes.
        assert wide[4]["shard"]["cut_bytes"] > small[4]["shard"]["cut_bytes"]


class TestRebalanceChaosParity:
    def _chaos(self, n_workers, transport, meas, ckpt=None):
        plan = FaultPlan(seed=0).kill(worker=1, step=3)
        with MultiprocessDistributedParticleFilter(
                lg_model(), cfg(), n_workers=n_workers, transport=transport,
                fault_plan=plan, on_failure="heal", rebalance_dead=True,
                recv_timeout=20.0) as pf:
            ests = [pf.step(z) for z in meas[:7]]
            if ckpt:
                pf.save_checkpoint(ckpt)
            ests += [pf.step(z) for z in meas[7:]]
            states, logw = pf.gather_population()
            diag = pf.diagnostics()
        return np.array(ests), states, logw, None, diag

    def test_rebalance_keeps_all_filters_live_and_transport_invariant(self):
        meas = lg_model().simulate(12, make_rng("numpy", seed=6)).measurements
        pipe = self._chaos(4, "pipe", meas)
        tcp = self._chaos(4, "tcp", meas)
        assert_bitwise(pipe, tcp)
        # The dead worker's sub-filters were adopted, not healed out.
        assert pipe[4]["dead_filters"] == []
        assert pipe[4]["membership"]["owned_counts"][1] == 0
        assert sum(pipe[4]["membership"]["owned_counts"]) == 8
        assert np.isfinite(pipe[1]).all()
        assert "rebalance" in pipe[4]["escalations"]

    def test_elastic_resume_across_worker_counts_is_bit_identical(self, tmp_path):
        meas = lg_model().simulate(12, make_rng("numpy", seed=7)).measurements
        path = str(tmp_path / "rebal.ckpt")
        full = self._chaos(4, "pipe", meas, ckpt=path)
        for n_resume in (2, 8):
            with MultiprocessDistributedParticleFilter(
                    lg_model(), cfg(), n_workers=n_resume,
                    transport="tcp" if n_resume == 2 else "pipe") as pf:
                pf.load_checkpoint(path)
                ests = np.array([pf.step(z) for z in meas[7:]])
                states, logw = pf.gather_population()
            np.testing.assert_array_equal(ests, full[0][7:])
            np.testing.assert_array_equal(states, full[1])
            np.testing.assert_array_equal(logw, full[2])

    def test_same_count_resume_restores_rebalanced_assignment(self, tmp_path):
        meas = lg_model().simulate(10, make_rng("numpy", seed=8)).measurements
        path = str(tmp_path / "rebal4.ckpt")
        full = self._chaos(4, "pipe", meas, ckpt=path)
        with MultiprocessDistributedParticleFilter(
                lg_model(), cfg(), n_workers=4) as pf:
            pf.load_checkpoint(path)
            # The post-rebalance (non-contiguous) shard layout came back.
            assert pf.membership.summary()["owned_counts"][1] == 0
            ests = np.array([pf.step(z) for z in meas[7:]])
        np.testing.assert_array_equal(ests, full[0][7:])


class TestGuards:
    def test_elastic_resume_requires_filter_streams(self, tmp_path):
        meas = lg_model().simulate(4, make_rng("numpy", seed=9)).measurements
        path = str(tmp_path / "legacy.ckpt")
        config = cfg(rng_streams="worker")
        with MultiprocessDistributedParticleFilter(
                lg_model(), config, n_workers=2) as pf:
            for z in meas:
                pf.step(z)
            pf.save_checkpoint(path)
        with MultiprocessDistributedParticleFilter(
                lg_model(), config, n_workers=4) as pf:
            with pytest.raises(CheckpointError, match="rng_streams"):
                pf.load_checkpoint(path)

    def test_rebalance_requires_filter_streams(self):
        with pytest.raises(ValueError, match="rng_streams"):
            MultiprocessDistributedParticleFilter(
                lg_model(), cfg(rng_streams="worker"), n_workers=2,
                on_failure="heal", rebalance_dead=True)

    def test_rebalance_excludes_respawn(self):
        with pytest.raises(ValueError, match="respawn"):
            MultiprocessDistributedParticleFilter(
                lg_model(), cfg(), n_workers=2, on_failure="heal",
                rebalance_dead=True, respawn_dead=True)

    def test_shard_exchange_on_needs_a_framed_transport(self):
        with pytest.raises(ValueError, match="framed"):
            MultiprocessDistributedParticleFilter(
                lg_model(), cfg(), n_workers=2, transport="shm",
                shard_exchange="on")

    def test_unknown_shard_exchange_rejected(self):
        with pytest.raises(ValueError, match="shard_exchange"):
            MultiprocessDistributedParticleFilter(
                lg_model(), cfg(), n_workers=2, shard_exchange="sometimes")
