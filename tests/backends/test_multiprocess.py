"""Tests for the message-passing multiprocessing backend."""

import numpy as np
import pytest

from repro.backends import MultiprocessDistributedParticleFilter
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, estimator="weighted_mean", seed=3)
    base.update(kw)
    return DistributedFilterConfig(**base)


def test_worker_split_validation():
    with pytest.raises(ValueError):
        MultiprocessDistributedParticleFilter(lg_model(), cfg(n_filters=9), n_workers=2)
    with pytest.raises((ValueError, TypeError)):
        MultiprocessDistributedParticleFilter(lg_model(), cfg(), n_workers=0)


def test_tracks_linear_system_two_workers():
    model = lg_model()
    truth = model.simulate(30, make_rng("numpy", seed=1))
    with MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2) as pf:
        run = run_filter(pf, model, truth)
    assert run.mean_error(warmup=10) < 0.3


def test_statistically_matches_single_process():
    model = lg_model()
    mp_errs, sp_errs = [], []
    for r in range(3):
        truth = model.simulate(30, make_rng("numpy", seed=200 + r))
        with MultiprocessDistributedParticleFilter(model, cfg(seed=r), n_workers=2) as pf:
            mp_errs.append(run_filter(pf, model, truth).mean_error(warmup=10))
        sp = DistributedParticleFilter(model, cfg(seed=r))
        sp_errs.append(run_filter(sp, model, truth).mean_error(warmup=10))
    assert abs(np.mean(mp_errs) - np.mean(sp_errs)) < 0.08


def test_exchange_crosses_worker_boundary():
    # Ring filter 3 (worker 0) and filter 4 (worker 1) are neighbours: a
    # planted good particle in filter 4 must reach filter 3 after one round.
    model = lg_model()
    with MultiprocessDistributedParticleFilter(model, cfg(n_exchange=4), n_workers=2) as pf:
        pf.initialize()
        pf.step(np.array([0.0]))  # burn one round so state exists
        states, logw = pf.gather_population()
        assert states.shape == (8, 16, 1)
        assert np.isfinite(states).all()


def test_max_weight_estimator_path():
    model = lg_model()
    truth = model.simulate(15, make_rng("numpy", seed=2))
    with MultiprocessDistributedParticleFilter(model, cfg(estimator="max_weight"), n_workers=2) as pf:
        run = run_filter(pf, model, truth)
    assert np.isfinite(run.estimates).all()


def test_all_to_all_topology_across_workers():
    model = lg_model()
    truth = model.simulate(15, make_rng("numpy", seed=4))
    with MultiprocessDistributedParticleFilter(model, cfg(topology="all-to-all"), n_workers=2) as pf:
        run = run_filter(pf, model, truth)
    assert np.isfinite(run.errors).all()


def test_four_workers():
    model = lg_model()
    truth = model.simulate(15, make_rng("numpy", seed=5))
    with MultiprocessDistributedParticleFilter(model, cfg(), n_workers=4) as pf:
        run = run_filter(pf, model, truth)
    assert run.mean_error(warmup=5) < 0.4


def test_close_is_idempotent():
    model = lg_model()
    pf = MultiprocessDistributedParticleFilter(model, cfg(), n_workers=2)
    pf.initialize()
    pf.close()
    pf.close()  # second close must be a no-op
