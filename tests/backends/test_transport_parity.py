"""Golden-trace parity: the shm transport must be bit-identical to pipe.

The shared-memory data plane is a pure transport optimization — same numbers,
fewer copies. These tests pin that contract: identical estimate trajectories,
identical gathered populations, and (under a seeded FaultPlan with a mid-run
kill + respawn) identical resilience diagnostics up to ``segments_reclaimed``,
which is transport-specific by design. A subprocess regression guards against
``resource_tracker`` leak warnings when workers die holding slab mappings.
"""

import subprocess
import sys
import textwrap

import numpy as np

from repro.backends import MultiprocessDistributedParticleFilter
from repro.core import DistributedFilterConfig
from repro.models import LinearGaussianModel
from repro.prng import make_rng
from repro.resilience import FaultPlan


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, estimator="weighted_mean",
                seed=3, n_exchange=2)
    base.update(kw)
    return DistributedFilterConfig(**base)


def run_transport(transport, config, meas, n_workers=4, **kw):
    with MultiprocessDistributedParticleFilter(
        lg_model(), config, n_workers=n_workers, transport=transport, **kw
    ) as pf:
        ests = np.array([pf.step(z) for z in meas])
        states, logw = pf.gather_population()
        diag = pf.diagnostics()
    return ests, states, logw, diag


class TestTransportParity:
    def test_ring_bit_identical(self):
        truth = lg_model().simulate(15, make_rng("numpy", seed=1))
        pipe = run_transport("pipe", cfg(), truth.measurements)
        shm = run_transport("shm", cfg(), truth.measurements)
        np.testing.assert_array_equal(pipe[0], shm[0])
        np.testing.assert_array_equal(pipe[1], shm[1])
        np.testing.assert_array_equal(pipe[2], shm[2])

    def test_all_to_all_pooled_bit_identical(self):
        truth = lg_model().simulate(12, make_rng("numpy", seed=2))
        config = cfg(topology="all-to-all")
        pipe = run_transport("pipe", config, truth.measurements, n_workers=2)
        shm = run_transport("shm", config, truth.measurements, n_workers=2)
        np.testing.assert_array_equal(pipe[0], shm[0])
        np.testing.assert_array_equal(pipe[1], shm[1])

    def test_chaos_kill_and_respawn_bit_identical(self):
        # A worker dies mid-run holding its slab, the topology heals around
        # it, and the block respawns with fresh slabs: the two transports
        # must still agree bit-for-bit, and the only diagnostic allowed to
        # differ is segments_reclaimed (a transport-level counter).
        truth = lg_model().simulate(20, make_rng("numpy", seed=5))
        plan = FaultPlan(seed=0).kill(worker=1, step=6)
        kw = dict(fault_plan=plan, on_failure="heal", respawn_dead=True,
                  recv_timeout=15.0)
        pipe = run_transport("pipe", cfg(), truth.measurements, **kw)
        shm = run_transport("shm", cfg(), truth.measurements, **kw)
        np.testing.assert_array_equal(pipe[0], shm[0])
        np.testing.assert_array_equal(pipe[1], shm[1])
        np.testing.assert_array_equal(pipe[2], shm[2])

        pipe_diag, shm_diag = dict(pipe[3]), dict(shm[3])
        assert pipe_diag.pop("segments_reclaimed") == 0
        assert shm_diag.pop("segments_reclaimed") >= 1  # killed worker's slab
        assert pipe_diag == shm_diag
        assert shm_diag["respawns"] >= 1

    def test_no_resource_tracker_leak_warnings(self):
        # Killed workers never run their close(); the master's unlink must
        # still deregister every segment, so interpreter shutdown emits no
        # "leaked shared_memory objects" resource_tracker warning.
        script = textwrap.dedent("""
            import numpy as np
            from repro.backends import MultiprocessDistributedParticleFilter
            from repro.core import DistributedFilterConfig
            from repro.models import LinearGaussianModel
            from repro.resilience import FaultPlan

            model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
            config = DistributedFilterConfig(n_particles=16, n_filters=8,
                                             estimator="weighted_mean", seed=3,
                                             n_exchange=2)
            plan = FaultPlan(seed=0).kill(worker=1, step=2)
            with MultiprocessDistributedParticleFilter(
                model, config, n_workers=4, transport="shm", fault_plan=plan,
                on_failure="heal", recv_timeout=15.0,
            ) as pf:
                for k in range(5):
                    pf.step(np.array([0.1]))
                assert pf.diagnostics()["segments_reclaimed"] >= 1
            print("done")
        """)
        proc = subprocess.run([sys.executable, "-c", script], capture_output=True,
                              text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "done" in proc.stdout
        assert "leaked" not in proc.stderr, proc.stderr
