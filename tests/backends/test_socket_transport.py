"""Socket transport: framing, handshake, and failure-taxonomy classification.

The contract under test: every way a TCP peer can fail maps onto the same
typed failure taxonomy the pipe transport uses, so the master's retry /
heal / respawn ladder needs no transport-specific cases —

- a clean close between frames  → ``EOFError``          → ``WorkerCrashedError``
- a close in the middle of one  → ``TruncatedFrameError`` (EOFError subtype)
- a connection reset mid-gather → ``ConnectionResetError`` (OSError)
- a handshake that never lands  → ``WorkerTimeoutError`` after the
  ``RetryPolicy`` deadline spends its backoff windows.
"""

import socket
import struct
import time

import numpy as np
import pytest

from repro.backends.socket_transport import (
    FrameConnection,
    SocketMasterChannel,
    SocketTransport,
    TruncatedFrameError,
)
from repro.backends.transport import make_transport, transport_caps
from repro.core import DistributedFilterConfig
from repro.models import LinearGaussianModel
from repro.prng import make_rng
from repro.resilience import FaultPlan
from repro.resilience.errors import WorkerCrashedError, WorkerTimeoutError
from repro.resilience.retry import RetryPolicy


def frame_pair():
    a, b = socket.socketpair()
    return FrameConnection(a), FrameConnection(b)


class TestFrameConnection:
    def test_roundtrip_preserves_arrays_bitwise(self):
        a, b = frame_pair()
        try:
            payload = ("phase1", np.arange(12.0).reshape(3, 4), {"k": 1})
            a.send(payload)
            kind, arr, meta = b.recv()
            assert kind == "phase1" and meta == {"k": 1}
            np.testing.assert_array_equal(arr, payload[1])
            assert a.bytes_sent == b.bytes_received > 0
        finally:
            a.close(), b.close()

    def test_poll_sees_queued_frames(self):
        a, b = frame_pair()
        try:
            assert b.poll(0.0) is False
            a.send(("x",))
            assert b.poll(1.0) is True
        finally:
            a.close(), b.close()

    def test_clean_close_between_frames_is_eof(self):
        a, b = frame_pair()
        a.send(("last",))
        a.close()
        assert b.recv() == ("last",)
        with pytest.raises(EOFError) as err:
            b.recv()
        # EOF at a frame boundary is a *clean* close, not a truncation.
        assert not isinstance(err.value, TruncatedFrameError)
        b.close()

    def test_partial_frame_is_truncated_frame_error(self):
        a, b = frame_pair()
        # Header promises 100 payload bytes; peer dies after 3.
        a._sock.sendall(struct.pack(">Q", 100) + b"abc")
        a.close()
        with pytest.raises(TruncatedFrameError) as err:
            b.recv()
        assert err.value.received == 3
        assert isinstance(err.value, EOFError)  # crash-classified upstream
        b.close()

    def test_partial_header_is_truncated_frame_error(self):
        a, b = frame_pair()
        a._sock.sendall(b"\x00\x00\x00")  # 3 of 8 header bytes
        a.close()
        with pytest.raises(TruncatedFrameError):
            b.recv()
        b.close()

    def test_oversize_header_refused(self):
        from repro.backends.socket_transport import MAX_FRAME_BYTES

        a, b = frame_pair()
        a._sock.sendall(struct.pack(">Q", MAX_FRAME_BYTES + 1))
        with pytest.raises(OSError):
            b.recv()
        a.close(), b.close()

    def test_reset_mid_gather_is_oserror(self):
        # A real TCP pair (RST needs TCP): abortive close via SO_LINGER 0
        # sends a reset, and the blocked reader gets ConnectionResetError —
        # an OSError, which the gather classifies as a worker crash.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.create_connection(listener.getsockname())
        server, _ = listener.accept()
        listener.close()
        a, b = FrameConnection(client), FrameConnection(server)
        a.send(("about to die",))
        assert b.recv() == ("about to die",)
        a._sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                           struct.pack("ii", 1, 0))
        a._sock.close()
        a._sock = None
        with pytest.raises(OSError) as err:
            b.recv()  # unread RST surfaces on the next read
        assert not isinstance(err.value, EOFError)
        b.close()


class TestHandshake:
    def test_deadline_expiry_is_worker_timeout(self):
        transport = SocketTransport(
            handshake=RetryPolicy(timeout=0.05, max_retries=1))
        master, _worker = transport.channel_pair(None, None)
        t0 = time.perf_counter()
        with pytest.raises(WorkerTimeoutError):
            master.after_start()  # nobody ever dials in
        # The deadline honoured its backoff windows (timeout * retries),
        # not a single window and not forever.
        assert 0.04 < time.perf_counter() - t0 < 5.0

    def test_connect_then_accept_delivers_frames(self):
        master, worker = SocketTransport().channel_pair(None, None)
        try:
            worker.send(("hello", 42))  # queued in the listener backlog
            master.after_start()
            assert master.conn.recv() == ("hello", 42)
            assert master.bytes_received > 0
        finally:
            master.close()
            worker.close()

    def test_registry_and_caps(self):
        caps = transport_caps("tcp")
        assert caps.cross_host and caps.framed and caps.byte_counters
        assert not caps.zero_copy
        assert caps.elastic
        t = make_transport("socket")  # alias
        assert t.name == "tcp"


class TestRetryPolicyTimesSockets:
    """RetryPolicy × socket failure modes through a real backend run."""

    def _run(self, **kw):
        model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]],
                                    R=[[0.01]])
        cfg = DistributedFilterConfig(n_particles=16, n_filters=8, seed=3,
                                      estimator="weighted_mean", n_exchange=1)
        truth = model.simulate(8, make_rng("numpy", seed=1))
        from repro.backends import MultiprocessDistributedParticleFilter

        with MultiprocessDistributedParticleFilter(
                model, cfg, n_workers=2, transport="tcp", **kw) as pf:
            ests = [pf.step(z) for z in truth.measurements]
            report = pf.report.summary()
            dead = pf.dead_workers
        return ests, report, dead

    def test_peer_killed_mid_gather_classifies_as_crash_and_heals(self):
        # SIGKILL closes the worker's socket mid-round: the master sees
        # EOF/reset on the stream, classifies WorkerCrashedError, and the
        # heal rung retires the shard without poisoning the run.
        plan = FaultPlan(seed=0).kill(worker=1, step=3)
        ests, report, dead = self._run(fault_plan=plan, on_failure="heal",
                                       recv_timeout=15.0)
        assert list(dead) == [1]
        assert report["n_failures"] >= 1
        assert any(f["kind"] == "crash" for f in report["failures"])
        assert all(np.isfinite(np.asarray(e)).all() for e in ests)

    def test_peer_killed_with_raise_propagates_worker_crash(self):
        plan = FaultPlan(seed=0).kill(worker=0, step=2)
        with pytest.raises(WorkerCrashedError):
            self._run(fault_plan=plan, on_failure="raise", recv_timeout=15.0)
