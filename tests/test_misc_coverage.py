"""Small targeted tests for branches not covered elsewhere."""

import numpy as np
import pytest

from repro.backends import DeviceSimulatedFilter
from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_filter,
)
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def test_centralized_max_weight_estimator():
    model = lg_model()
    truth = model.simulate(20, make_rng("numpy", seed=0))
    pf = CentralizedParticleFilter(
        model, CentralizedFilterConfig(n_particles=500, estimator="max_weight", seed=1)
    )
    run = run_filter(pf, model, truth)
    assert run.mean_error(warmup=5) < 0.5


def test_device_backend_maps_nonstandard_resampler_to_rws():
    # The cost model only knows rws/vose; other resamplers are priced as RWS.
    model = lg_model()
    cfg = DistributedFilterConfig(n_particles=16, n_filters=8, resampler="systematic", seed=0)
    sim = DeviceSimulatedFilter(DistributedParticleFilter(model, cfg), "gtx-580")
    assert sim.round_cost.total_seconds > 0


def test_distributed_frequency_policy_partial_rows():
    # A 50% frequency policy: some rows resample, others accumulate weights.
    model = lg_model()
    cfg = DistributedFilterConfig(
        n_particles=16, n_filters=64, resample_policy="frequency", resample_arg=0.5, seed=2
    )
    pf = DistributedParticleFilter(model, cfg)
    pf.step(np.array([0.1]))
    reset_rows = int(np.sum(np.all(pf.log_weights == 0.0, axis=1)))
    assert 10 < reset_rows < 54  # both behaviours present


def test_distributed_ess_policy_rowwise():
    model = lg_model()
    cfg = DistributedFilterConfig(
        n_particles=32, n_filters=16, resample_policy="ess", resample_arg=0.99, seed=3
    )
    pf = DistributedParticleFilter(model, cfg)
    est = pf.step(np.array([0.1]))
    assert np.isfinite(est).all()


def test_exchange_more_than_population_rejected():
    with pytest.raises(ValueError):
        DistributedFilterConfig(n_particles=4, n_exchange=5)


def test_module_docstring_quickstart_runs():
    # The package docstring's example must actually work.
    import repro

    code = []
    grab = False
    for line in repro.__doc__.splitlines():
        if line.strip().startswith("from repro"):
            grab = True
        if grab:
            if line.strip() and not line.startswith("    ") and not line.startswith("from") and not line.startswith("print") and not line.startswith("pf") and not line.startswith("result") and not line.startswith("model") and not line.startswith("pos") and not line.startswith("truth"):
                break
            code.append(line.strip() if not line.startswith("        ") else line[4:])
    src = "\n".join(c for c in code if c)
    # Shrink the run so the smoke test stays fast.
    src = src.replace("lemniscate(200", "lemniscate(30")
    namespace = {}
    exec(src, namespace)  # noqa: S102 - executing our own documented example
    assert "result" in namespace
