"""Tests for the closed-loop control application."""

import numpy as np
import pytest

from repro.control import ClosedLoopResult, PointingController, pointing_error, run_closed_loop
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import RobotArmModel, lemniscate
from repro.prng import make_rng


def make_filter(model, seed=2):
    return DistributedParticleFilter(
        model,
        DistributedFilterConfig(n_particles=64, n_filters=32, estimator="weighted_mean", seed=seed),
    )


def lemni(model, n=120):
    return lemniscate(n, h_s=model.params.h_s, center=(0.8, 0.0), scale=0.5)


def test_controller_validation():
    model = RobotArmModel()
    with pytest.raises(ValueError):
        PointingController(model, kp=0.0)
    with pytest.raises(ValueError):
        PointingController(model, u_max=-1.0)


def test_command_shape_and_saturation():
    model = RobotArmModel()
    ctrl = PointingController(model, kp=100.0, u_max=1.5)
    est = model.initial_mean()
    est[0] = 2.0  # large base error -> saturated command
    u = ctrl.command(est)
    assert u.shape == (5,)
    assert np.abs(u).max() <= 1.5 + 1e-12


def test_command_is_zero_at_pointing_posture():
    model = RobotArmModel()
    ctrl = PointingController(model)
    est = model.initial_mean()
    # Object straight ahead on +x; set the pointing posture exactly.
    est[0] = 0.0
    est[1:5] = -0.15 / 4
    est[5:7] = [0.8, 0.0]
    u = ctrl.command(est)
    np.testing.assert_allclose(u, 0.0, atol=1e-9)


def test_pointing_error_zero_on_axis():
    model = RobotArmModel()
    state = model.initial_mean()
    state[:5] = 0.0
    state[5:7] = [2.0, 0.0]  # straight along the arm's optical axis
    assert pointing_error(model, state) == pytest.approx(0.0, abs=1e-12)


def test_closed_loop_shapes():
    model = RobotArmModel()
    pos, vel = lemni(model, n=30)
    res = run_closed_loop(model, make_filter(model), pos, vel, make_rng("numpy", 7), PointingController(model))
    assert isinstance(res, ClosedLoopResult)
    assert res.n_steps == 30
    assert res.controls.shape == (30, 5)
    assert np.isfinite(res.pointing_errors).all()


def test_closed_loop_beats_open_loop_pointing():
    # The whole point of estimating in the loop: the camera keeps the object
    # far closer to its optical axis than the open-loop sweep does.
    model = RobotArmModel()
    pos, vel = lemni(model)
    closed = run_closed_loop(model, make_filter(model), pos, vel, make_rng("numpy", 7), PointingController(model))
    open_ = run_closed_loop(model, make_filter(model), pos, vel, make_rng("numpy", 7), None)
    assert closed.mean_pointing_error(warmup=30) < 0.6 * open_.mean_pointing_error(warmup=30)
    # Estimation quality stays in the same class while the plant moves.
    assert closed.mean_estimation_error(warmup=30) < 0.3


def test_closed_loop_rejects_bad_trajectory():
    model = RobotArmModel()
    with pytest.raises(ValueError):
        run_closed_loop(model, make_filter(model), np.zeros((5, 2)), np.zeros((4, 2)), make_rng("numpy", 0))


def test_bad_estimates_degrade_control():
    # Feed the controller a filter that barely works (4 particles total):
    # closed-loop pointing should be clearly worse than with a real filter.
    model = RobotArmModel()
    pos, vel = lemni(model)
    good = run_closed_loop(model, make_filter(model), pos, vel, make_rng("numpy", 7), PointingController(model))
    tiny = DistributedParticleFilter(
        model, DistributedFilterConfig(n_particles=2, n_filters=2, estimator="weighted_mean", seed=3)
    )
    bad = run_closed_loop(model, tiny, pos, vel, make_rng("numpy", 7), PointingController(model))
    assert bad.mean_pointing_error(warmup=30) > good.mean_pointing_error(warmup=30)
