"""Cross-module integration and property tests.

These exercise the whole stack: random (valid) configurations must always
produce a working filter; the distributed filter must agree with the exact
Kalman posterior on the one model where that posterior is known; and the
degeneracy problem must actually appear and be cured by resampling.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import KalmanFilter
from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_filter,
)
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(
        A=[[1.0, 0.1], [0.0, 0.9]],
        C=[[1.0, 0.0]],
        Q=np.diag([0.004, 0.01]),
        R=[[0.01]],
        x0_mean=[0.0, 0.3],
        x0_cov=np.eye(2) * 0.3,
    )


config_strategy = st.builds(
    DistributedFilterConfig,
    n_particles=st.sampled_from([4, 8, 16, 32]),
    n_filters=st.sampled_from([2, 4, 9, 16]),
    topology=st.sampled_from(["ring", "torus", "all-to-all", "none"]),
    n_exchange=st.integers(min_value=0, max_value=4),
    resampler=st.sampled_from(["rws", "systematic", "stratified", "multinomial", "residual"]),
    resample_policy=st.sampled_from(["always", "ess", "frequency"]),
    resample_arg=st.floats(min_value=0.1, max_value=1.0),
    estimator=st.sampled_from(["max_weight", "weighted_mean"]),
    exchange_select=st.sampled_from(["best", "sample"]),
    selection=st.sampled_from(["sort", "max"]),
    frim_redraws=st.integers(min_value=0, max_value=2),
    dtype=st.sampled_from([np.float32, np.float64]),
    seed=st.integers(min_value=0, max_value=1000),
)


@settings(max_examples=40, deadline=None)
@given(cfg=config_strategy)
def test_any_valid_config_filters_without_error(cfg):
    """The whole configuration space must produce finite estimates and keep
    the population invariants (shape, dtype, finite weights)."""
    model = lg_model()
    pf = DistributedParticleFilter(model, cfg)
    z = np.array([0.25])
    for k in range(3):
        est = pf.step(z)
    assert est.shape == (2,)
    assert np.isfinite(est).all()
    assert pf.states.shape == (cfg.n_filters, cfg.n_particles, 2)
    assert pf.states.dtype == np.dtype(cfg.dtype)
    assert np.isfinite(pf.states).all()
    # Log-weights are finite (never NaN; -inf only for padded slots, which
    # never persist in the population).
    assert not np.isnan(pf.log_weights).any()


def test_distributed_pf_matches_kalman_posterior_mean():
    """On the linear-Gaussian model, the distributed PF's weighted-mean
    estimate must track the exact Kalman mean closely — the strongest
    correctness statement available."""
    model = lg_model()
    truth = model.simulate(60, make_rng("numpy", seed=0))
    kf_run = run_filter(KalmanFilter(model), model, truth)
    cfg = DistributedFilterConfig(
        n_particles=128, n_filters=32, estimator="weighted_mean", dtype=np.float64, seed=1
    )
    pf_run = run_filter(DistributedParticleFilter(model, cfg), model, truth)
    # Compare estimate trajectories directly (not just errors vs truth).
    diff = np.linalg.norm(pf_run.estimates - kf_run.estimates, axis=1)
    assert diff[10:].mean() < 0.08


def test_centralized_pf_matches_kalman_posterior_mean():
    model = lg_model()
    truth = model.simulate(60, make_rng("numpy", seed=2))
    kf_run = run_filter(KalmanFilter(model), model, truth)
    pf = CentralizedParticleFilter(
        model, CentralizedFilterConfig(n_particles=4000, estimator="weighted_mean", seed=3)
    )
    pf_run = run_filter(pf, model, truth)
    diff = np.linalg.norm(pf_run.estimates - kf_run.estimates, axis=1)
    assert diff[10:].mean() < 0.06


def test_degeneracy_appears_without_resampling_and_is_cured_with_it():
    """Section II-B: without resampling the weight variance only grows and a
    single particle ends up holding the mass; resampling prevents it."""
    model = lg_model()
    truth = model.simulate(25, make_rng("numpy", seed=4))

    never = CentralizedParticleFilter(
        model,
        CentralizedFilterConfig(n_particles=500, resample_policy="frequency", resample_arg=0.0, seed=5),
    )
    always = CentralizedParticleFilter(
        model, CentralizedFilterConfig(n_particles=500, resampler="rws", seed=5)
    )
    run_filter(never, model, truth)
    run_filter(always, model, truth)
    assert never.effective_sample_size() < 25  # degenerate: ESS collapsed
    assert always.effective_sample_size() > 100  # fresh weights after resample


def test_variance_of_weights_increases_over_time_without_resampling():
    model = lg_model()
    truth = model.simulate(20, make_rng("numpy", seed=6))
    pf = CentralizedParticleFilter(
        model,
        CentralizedFilterConfig(n_particles=400, resample_policy="frequency", resample_arg=0.0, seed=7),
    )
    pf.initialize()
    ess_series = []
    for k in range(truth.n_steps):
        pf.step(truth.measurements[k])
        ess_series.append(pf.effective_sample_size())
    # ESS trend is downward (allowing local fluctuations): compare thirds.
    first, last = np.mean(ess_series[:6]), np.mean(ess_series[-6:])
    assert last < first


def test_float32_and_float64_agree_on_estimates():
    """Section VI: single precision does not change accuracy meaningfully."""
    model = lg_model()
    truth = model.simulate(40, make_rng("numpy", seed=8))
    errs = {}
    for dtype in (np.float32, np.float64):
        cfg = DistributedFilterConfig(
            n_particles=64, n_filters=16, estimator="weighted_mean", dtype=dtype, seed=9
        )
        errs[dtype] = run_filter(DistributedParticleFilter(model, cfg), model, truth).mean_error(warmup=10)
    assert abs(errs[np.float32] - errs[np.float64]) < 0.05


def test_long_run_stability():
    """500 steps: no drift, no NaN leakage, bounded error throughout — the
    real-time deployment property (a control loop runs indefinitely)."""
    model = lg_model()
    truth = model.simulate(500, make_rng("numpy", seed=20))
    cfg = DistributedFilterConfig(
        n_particles=32, n_filters=16, estimator="weighted_mean", seed=21
    )
    run = run_filter(DistributedParticleFilter(model, cfg), model, truth)
    assert np.isfinite(run.errors).all()
    # Error in the last fifth is no worse than shortly after convergence.
    early = run.errors[50:150].mean()
    late = run.errors[400:].mean()
    assert late < 2.0 * early + 0.05
