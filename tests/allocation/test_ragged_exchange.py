"""Exchange edge cases under heterogeneous (ragged) sub-filter widths.

The cases the padded-plus-mask layout must survive:

- ``t`` exceeding the smallest live width: top-t selection reaches into a
  shrunken row's padding, which must travel as zero-mass cargo and never be
  selected by any downstream resample;
- dead neighbours adjacent to shrunken sub-filters (rejuvenation donors
  have a different live width than the row they heal);
- pooled (All-to-All) top-t routing over ragged rows.
"""

import numpy as np
import pytest

from repro.allocation import apply_width_mask
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.engine import vector_stages
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def adaptive_cfg(**kw):
    base = dict(n_particles=8, n_filters=6, topology="ring", n_exchange=1,
                estimator="weighted_mean", seed=11, allocation="mass",
                alloc_min_width=2, alloc_hysteresis=0.0)
    base.update(kw)
    return DistributedFilterConfig(**base)


def drive(pf, steps=12, seed=5):
    model = pf.model
    truth = model.simulate(steps, make_rng("numpy", seed=seed))
    meas = np.asarray(truth.measurements, dtype=np.float64)
    return np.stack([pf.step(meas[k]) for k in range(steps)])


def assert_layout_invariants(pf):
    """Live slots finite-capable, padded slots exactly -inf, budget conserved."""
    cfg = pf.config
    widths = pf.widths
    assert widths is not None
    assert widths.sum() == cfg.n_particles * cfg.n_filters
    assert widths.min() >= cfg.alloc_min_width
    assert widths.max() <= cfg.alloc_max_width
    logw = pf.log_weights
    for f, w in enumerate(widths):
        assert np.isneginf(logw[f, int(w):]).all()
    assert np.isfinite(pf.states).all()


class TestExchangeExceedsSmallestWidth:
    def test_t_larger_than_min_width_stays_finite(self):
        # t=6 while rows may shrink to 2 live particles: the top-6 of a
        # shrunken row includes padding, which must carry zero mass.
        pf = DistributedParticleFilter(lg_model(), adaptive_cfg(n_exchange=6))
        ests = drive(pf, steps=15)
        assert np.isfinite(ests).all()
        assert pf.widths.min() < 6 <= pf.widths.max()  # the case actually hit
        assert_layout_invariants(pf)

    def test_padding_sent_as_zero_mass_cargo(self):
        # Direct top-t probe: a row with 2 live particles asked for its top
        # 5 must send exactly 3 padded (zero-mass) entries.
        pf = DistributedParticleFilter(lg_model(), adaptive_cfg())
        pf.initialize()
        state = pf._state
        state.widths = np.array([8, 2, 8, 8, 8, 8], dtype=np.int64)
        apply_width_mask(state.log_weights, state.widths)
        vector_stages.sort_by_weight(pf._ctx, state)
        send_states, send_logw = vector_stages.top_t(pf._ctx, state, 5)
        assert send_logw.shape == (6, 5)
        assert np.isfinite(send_logw[1, :2]).all()
        assert np.isneginf(send_logw[1, 2:]).all()
        assert np.isfinite(send_states).all()

    def test_sampled_selection_never_picks_padding(self):
        # exchange_select="sample" draws by weight: padded slots have
        # exactly zero probability, so every sampled particle is live.
        pf = DistributedParticleFilter(
            lg_model(), adaptive_cfg(exchange_select="sample", n_exchange=4))
        pf.initialize()
        state = pf._state
        state.widths = np.array([8, 3, 8, 8, 8, 8], dtype=np.int64)
        apply_width_mask(state.log_weights, state.widths)
        # Tag the padded slots of row 1 so a leak is detectable.
        state.states[1, 3:] = 1e9
        _, send_logw = vector_stages.top_t(pf._ctx, state, 4)
        send_states, _ = vector_stages.top_t(pf._ctx, state, 4)
        assert (np.abs(send_states[1]) < 1e9).all()


class TestDeadNeighboursNextToShrunkenRows:
    def test_rejuvenated_row_keeps_its_own_width(self):
        # A fully degenerate row heals from a neighbour whose live width is
        # larger; the healed row must re-mask the donor's surplus particles.
        pf = DistributedParticleFilter(lg_model(), adaptive_cfg())
        pf.initialize()
        state = pf._state
        state.widths = np.array([8, 3, 8, 8, 8, 8], dtype=np.int64)
        apply_width_mask(state.log_weights, state.widths)
        state.log_weights[1, :] = -np.inf  # row 1 fully degenerate
        vector_stages.heal_population(pf._ctx, state)
        assert state.heal_counters["rejuvenated"] == 1
        assert np.isfinite(state.log_weights[1, :3]).all()
        assert np.isneginf(state.log_weights[1, 3:]).all()

    def test_adaptive_run_survives_worker_death(self):
        # System-level: a worker dies mid-run while widths are ragged. The
        # healer routes around the dead block and the allocator freezes (a
        # dead block cannot resize), so the budget over live rows is stable.
        pytest.importorskip("multiprocessing")
        from repro.backends import MultiprocessDistributedParticleFilter
        from repro.resilience import FaultPlan

        model = lg_model()
        plan = FaultPlan(seed=0).kill(worker=1, step=4)
        with MultiprocessDistributedParticleFilter(
            model, adaptive_cfg(n_filters=8), n_workers=4, fault_plan=plan,
            on_failure="heal", recv_timeout=30.0,
        ) as pf:
            ests = drive(pf, steps=10)
            assert pf.dead_workers == (1,)
            widths_at_death = pf.widths.copy()
            more = drive(pf, steps=4, seed=99)
            # Allocation frozen while degraded: widths must not move.
            np.testing.assert_array_equal(pf.widths, widths_at_death)
        assert np.isfinite(ests).all() and np.isfinite(more).all()

    def test_respawned_worker_adopts_donor_widths(self):
        # With respawn enabled the dead block comes back carrying the
        # master's width vector for its rows, then allocation resumes.
        from repro.backends import MultiprocessDistributedParticleFilter
        from repro.resilience import FaultPlan

        model = lg_model()
        plan = FaultPlan(seed=0).kill(worker=1, step=3)
        with MultiprocessDistributedParticleFilter(
            model, adaptive_cfg(n_filters=8), n_workers=4, fault_plan=plan,
            on_failure="heal", respawn_dead=True, recv_timeout=30.0,
        ) as pf:
            ests = drive(pf, steps=12)
            assert pf.report.respawns == 1
            assert np.isfinite(ests).all()
            cfg = pf.config
            assert pf.widths.sum() == cfg.n_particles * cfg.n_filters


class TestPooledToptRagged:
    def test_all_to_all_with_ragged_widths(self):
        pf = DistributedParticleFilter(
            lg_model(), adaptive_cfg(topology="all-to-all", n_exchange=3))
        ests = drive(pf, steps=15)
        assert np.isfinite(ests).all()
        assert_layout_invariants(pf)

    def test_pooled_route_carries_no_padding_mass(self):
        pf = DistributedParticleFilter(
            lg_model(), adaptive_cfg(topology="all-to-all", n_exchange=4))
        pf.initialize()
        state = pf._state
        state.widths = np.array([8, 2, 8, 8, 8, 8], dtype=np.int64)
        apply_width_mask(state.log_weights, state.widths)
        vector_stages.sort_by_weight(pf._ctx, state)
        pooled_states, pooled_logw = vector_stages.exchange_pool(pf._ctx, state)
        m = state.log_weights.shape[1]
        # Received region: the global pool selects the best t across all
        # rows by weight — padding (at -inf) can never beat a live particle
        # while any live candidates remain.
        assert np.isfinite(pooled_logw[:, m:]).all()
        assert np.isfinite(pooled_states).all()
