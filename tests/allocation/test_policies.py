"""Allocation policy contracts: conservation, clamps, hysteresis, state."""

import numpy as np
import pytest

from repro.allocation import (
    ESSProportionalAllocation,
    FixedAllocation,
    WeightMassAllocation,
    allocation_capacity,
    apportion,
    make_allocation_policy,
)
from repro.core import DistributedFilterConfig


class TestApportion:
    def test_conserves_budget_exactly(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            scores = rng.uniform(0, 10, size=8)
            out = apportion(scores, budget=128, min_width=2, max_width=64)
            assert out.sum() == 128
            assert out.min() >= 2 and out.max() <= 64

    def test_proportional_when_unclamped(self):
        out = apportion(np.array([1.0, 3.0]), budget=40, min_width=1, max_width=40)
        assert out.tolist() == [10, 30]

    def test_clamps_pin_and_redistribute(self):
        # One huge score would take everything; the max clamp caps it and
        # the remainder flows to the others.
        out = apportion(np.array([100.0, 1.0, 1.0]), budget=30,
                        min_width=4, max_width=16)
        assert out.sum() == 30
        assert out[0] == 16
        assert (out[1:] >= 4).all()

    def test_zero_and_nonfinite_scores_fall_back_uniform(self):
        out = apportion(np.array([0.0, 0.0, 0.0, 0.0]), budget=16,
                        min_width=1, max_width=16)
        assert out.tolist() == [4, 4, 4, 4]
        out = apportion(np.array([np.nan, -np.inf, 1.0, 1.0]), budget=16,
                        min_width=2, max_width=16)
        assert out.sum() == 16
        assert out[2] == out[3]

    def test_infeasible_budget_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            apportion(np.ones(4), budget=3, min_width=1, max_width=8)
        with pytest.raises(ValueError, match="infeasible"):
            apportion(np.ones(4), budget=64, min_width=1, max_width=8)

    def test_deterministic(self):
        scores = np.array([2.0, 5.0, 3.0, 7.0, 1.0])
        a = apportion(scores, 100, 2, 60)
        b = apportion(scores, 100, 2, 60)
        np.testing.assert_array_equal(a, b)


class TestFixedAllocation:
    def test_widths_never_change(self):
        policy = FixedAllocation(budget=64, min_width=8, max_width=8)
        widths = np.full(8, 8, dtype=np.int64)
        out = policy.decide(widths, np.zeros(8), np.zeros(8))
        np.testing.assert_array_equal(out, widths)
        assert out is not widths  # never aliases the input


class TestESSProportionalAllocation:
    def test_follows_ess(self):
        policy = ESSProportionalAllocation(budget=64, min_width=2, max_width=48)
        widths = np.full(4, 16, dtype=np.int64)
        ess = np.array([30.0, 1.0, 1.0, 1.0])
        out = policy.decide(widths, ess, np.full(4, 0.25))
        assert out.sum() == 64
        assert out[0] > 16 and (out[1:] < 16).all()

    def test_hysteresis_freezes_small_changes(self):
        policy = ESSProportionalAllocation(budget=64, min_width=2, max_width=48,
                                           hysteresis=0.5)
        widths = np.full(4, 16, dtype=np.int64)
        # Mild imbalance: proposal deltas under 50% of the width stay frozen.
        ess = np.array([18.0, 15.0, 16.0, 15.0])
        out = policy.decide(widths, ess, np.full(4, 0.25))
        np.testing.assert_array_equal(out, widths)

    def test_hysteresis_lets_large_changes_through(self):
        policy = ESSProportionalAllocation(budget=64, min_width=2, max_width=48,
                                           hysteresis=0.25)
        widths = np.full(4, 16, dtype=np.int64)
        ess = np.array([60.0, 1.0, 1.0, 1.0])
        out = policy.decide(widths, ess, np.full(4, 0.25))
        assert out.sum() == 64
        assert out[0] > widths[0]


class TestWeightMassAllocation:
    def test_smoothing_damps_spikes(self):
        policy = WeightMassAllocation(budget=64, min_width=2, max_width=48,
                                      smooth=0.5)
        widths = np.full(4, 16, dtype=np.int64)
        even = np.full(4, 0.25)
        w1 = policy.decide(widths, np.full(4, 8.0), even)
        spike = np.array([0.97, 0.01, 0.01, 0.01])
        w2 = policy.decide(w1, np.full(4, 8.0), spike)
        # One spiky round moves widths but not all the way to the clamp.
        assert w2[0] > w1[0]
        assert w2[0] < 48

    def test_state_dict_roundtrip_reproduces_decisions(self):
        def mk():
            return WeightMassAllocation(budget=64, min_width=2, max_width=48,
                                        hysteresis=0.1, smooth=0.5)

        rng = np.random.default_rng(1)
        a = mk()
        widths = np.full(4, 16, dtype=np.int64)
        for _ in range(5):
            share = rng.dirichlet(np.ones(4))
            widths = a.decide(widths, np.full(4, 8.0), share)
        saved, saved_widths = a.state_dict(), widths.copy()

        b = mk()
        b.load_state_dict(saved)
        share = np.array([0.4, 0.3, 0.2, 0.1])
        np.testing.assert_array_equal(
            a.decide(saved_widths, np.full(4, 8.0), share),
            b.decide(saved_widths, np.full(4, 8.0), share))

    def test_invalid_smooth_rejected(self):
        with pytest.raises(ValueError, match="smooth"):
            WeightMassAllocation(64, 2, 48, smooth=0.0)


class TestConfigFactory:
    def test_fixed_capacity_is_dense(self):
        cfg = DistributedFilterConfig(n_particles=16, n_filters=8)
        assert cfg.allocation == "fixed"
        assert allocation_capacity(cfg) == 16
        policy = make_allocation_policy(cfg)
        assert policy.name == "fixed"

    def test_adaptive_capacity_is_max_width(self):
        cfg = DistributedFilterConfig(n_particles=16, n_filters=8,
                                      allocation="mass")
        assert allocation_capacity(cfg) == cfg.alloc_max_width
        assert cfg.alloc_max_width == 64  # defaults to 4 * n_particles
        policy = make_allocation_policy(cfg)
        assert policy.name == "mass"
        assert policy.budget == 128

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="allocation must be"):
            DistributedFilterConfig(n_particles=16, n_filters=8,
                                    allocation="bogus")
