"""Allocation metrics: ESS, weight-mass share, and the distributed split."""

import numpy as np

from repro.allocation import (
    mass_concentration,
    row_logsumexp,
    share_from_logsumexp,
    subfilter_ess,
    weight_mass_share,
)


class TestSubfilterESS:
    def test_uniform_weights_give_full_ess(self):
        logw = np.zeros((3, 8))
        np.testing.assert_allclose(subfilter_ess(logw), 8.0)

    def test_collapsed_row_gives_one(self):
        logw = np.full((1, 8), -np.inf)
        logw[0, 3] = 0.0
        np.testing.assert_allclose(subfilter_ess(logw), 1.0)

    def test_fully_degenerate_row_gives_zero(self):
        logw = np.full((2, 8), -np.inf)
        logw[1] = 0.0
        np.testing.assert_allclose(subfilter_ess(logw), [0.0, 8.0])

    def test_padding_contributes_nothing(self):
        logw = np.zeros((1, 8))
        padded = np.full((1, 12), -np.inf)
        padded[0, :8] = logw
        np.testing.assert_allclose(subfilter_ess(padded), subfilter_ess(logw))


class TestWeightMassShare:
    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        share = weight_mass_share(rng.normal(size=(6, 16)))
        assert share.shape == (6,)
        np.testing.assert_allclose(share.sum(), 1.0)

    def test_degenerate_rows_get_zero_share(self):
        logw = np.zeros((3, 4))
        logw[1] = -np.inf
        share = weight_mass_share(logw)
        assert share[1] == 0.0
        np.testing.assert_allclose(share[[0, 2]], 0.5)

    def test_all_degenerate_falls_back_uniform(self):
        share = weight_mass_share(np.full((4, 8), -np.inf))
        np.testing.assert_allclose(share, 0.25)

    def test_shift_invariant(self):
        rng = np.random.default_rng(1)
        logw = rng.normal(size=(5, 12))
        np.testing.assert_allclose(weight_mass_share(logw),
                                   weight_mass_share(logw - 1234.5))


class TestDistributedSplit:
    """The multiprocess reduction: workers ship row logsumexps, the master
    concatenates and softmaxes — must equal the centralized computation."""

    def test_blockwise_equals_central(self):
        rng = np.random.default_rng(2)
        logw = rng.normal(size=(8, 16)) * 5.0
        central = weight_mass_share(logw)
        # Three workers own rows [0:3], [3:6], [6:8].
        lse = np.concatenate([row_logsumexp(logw[lo:hi])
                              for lo, hi in ((0, 3), (3, 6), (6, 8))])
        np.testing.assert_array_equal(share_from_logsumexp(lse), central)

    def test_row_logsumexp_degenerate_is_neg_inf(self):
        lse = row_logsumexp(np.full((2, 4), -np.inf))
        assert np.isneginf(lse).all()


class TestMassConcentration:
    def test_bounds(self):
        assert mass_concentration(np.full(8, 1.0 / 8)) == 1.0 / 8
        assert mass_concentration(np.array([1.0, 0.0, 0.0])) == 1.0

    def test_degenerate_input_falls_back_to_uniform_value(self):
        assert mass_concentration(np.zeros(4)) == 0.25
