"""Allocation parity contracts.

Three guarantees the refactor must keep:

- the **fixed** policy is invisible: every backend produces estimates
  bit-identical to each other (the pre-refactor golden behaviour), with a
  dense layout (``widths is None``) and zero allocation traffic;
- the **adaptive** policies are transport-independent: pipe and shm runs
  agree bit-for-bit on estimates *and* width trajectories;
- checkpoints: adaptive runs resume bit-identically (policy state and
  widths ride the snapshot), and schema-v1 checkpoints — written before
  allocation existed — still load.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.backends import MultiprocessDistributedParticleFilter
from repro.backends.sequential import SequentialDistributedParticleFilter
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import LinearGaussianModel
from repro.prng import make_rng
from repro.resilience.checkpoint import MANIFEST_MEMBER


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=16, n_filters=8, topology="ring", n_exchange=1,
                estimator="weighted_mean", seed=3)
    base.update(kw)
    return DistributedFilterConfig(**base)


def adaptive_cfg(**kw):
    return cfg(allocation="mass", alloc_min_width=4, alloc_hysteresis=0.0, **kw)


def measurements(n_steps, seed=4):
    model = lg_model()
    truth = model.simulate(n_steps, make_rng("numpy", seed=seed))
    return np.asarray(truth.measurements, dtype=np.float64)


def drive(pf, meas, start=0):
    return np.stack([pf.step(meas[k]) for k in range(start, meas.shape[0])])


class TestFixedPolicyIsInvisible:
    """With allocation="fixed" — default or explicit — each backend keeps a
    dense layout and reproduces its own pre-refactor golden trace. (The
    vectorized pre-refactor hex traces themselves are pinned by
    ``tests/engine/test_golden_trace.py``; cross-backend equality is a
    *statistical* contract in this repo, not a bit-level one.)"""

    @pytest.mark.parametrize("factory", [
        DistributedParticleFilter, SequentialDistributedParticleFilter,
    ], ids=["vectorized", "sequential"])
    def test_explicit_fixed_matches_default_config(self, factory):
        model, meas = lg_model(), measurements(10)
        default = drive(factory(model, cfg()), meas)
        explicit = drive(factory(model, cfg(allocation="fixed")), meas)
        np.testing.assert_array_equal(explicit, default)

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_multiprocess_fixed_matches_default_config(self, transport):
        model, meas = lg_model(), measurements(10)
        results = {}
        for allocation in ("fixed", "fixed-default"):
            config = cfg() if allocation == "fixed-default" else cfg(
                allocation="fixed")
            with MultiprocessDistributedParticleFilter(
                    model, config, n_workers=2, transport=transport) as pf:
                results[allocation] = drive(pf, meas)
                assert pf.widths is None
                assert all(v == 0 for v in pf.alloc_counters.values())
        np.testing.assert_array_equal(results["fixed"],
                                      results["fixed-default"])

    def test_fixed_pipe_equals_shm(self):
        model, meas = lg_model(), measurements(10)
        traces = []
        for transport in ("pipe", "shm"):
            with MultiprocessDistributedParticleFilter(
                    model, cfg(allocation="fixed"), n_workers=2,
                    transport=transport) as pf:
                traces.append(drive(pf, meas))
        np.testing.assert_array_equal(traces[0], traces[1])

    def test_dense_layout_and_silent_counters(self):
        pf = DistributedParticleFilter(lg_model(), cfg())
        drive(pf, measurements(6))
        assert pf.widths is None
        assert pf._state.log_weights.shape == (8, 16)  # no padding columns
        assert all(v == 0 for v in pf._state.alloc_counters.values())


class TestAdaptiveTransportParity:
    """mass policy: pipe and shm must agree bit-for-bit — estimates, width
    trajectory, and migration counters alike."""

    def test_pipe_equals_shm(self):
        model, meas = lg_model(), measurements(12)
        results = {}
        for transport in ("pipe", "shm"):
            with MultiprocessDistributedParticleFilter(
                    model, adaptive_cfg(), n_workers=2,
                    transport=transport) as pf:
                est = drive(pf, meas)
                results[transport] = (est, pf.widths.copy(),
                                      dict(pf.alloc_counters))
        est_p, widths_p, counters_p = results["pipe"]
        est_s, widths_s, counters_s = results["shm"]
        np.testing.assert_array_equal(est_p, est_s)
        np.testing.assert_array_equal(widths_p, widths_s)
        assert counters_p == counters_s
        assert counters_p["particles_migrated"] > 0  # adaptivity engaged


class TestAdaptiveCheckpointResume:
    def test_single_process_resume_bit_identical(self, tmp_path):
        model, meas, cut = lg_model(), measurements(14), 7
        golden_pf = DistributedParticleFilter(model, adaptive_cfg())
        golden = drive(golden_pf, meas)
        assert golden_pf._state.alloc_counters["width_changes"] > 0

        pf = DistributedParticleFilter(model, adaptive_cfg())
        head = drive(pf, meas[:cut])
        path = str(tmp_path / "adaptive.ckpt")
        manifest = pf.save_checkpoint(path)
        # Adaptive checkpoints carry the policy state block.
        assert manifest["meta"]["alloc"]["policy"] == "mass"

        pf2 = DistributedParticleFilter(model, adaptive_cfg())
        pf2.load_checkpoint(path)
        tail = drive(pf2, meas, start=cut)
        np.testing.assert_array_equal(np.vstack([head, tail]), golden)
        np.testing.assert_array_equal(pf2.widths, golden_pf.widths)

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_multiprocess_resume_bit_identical(self, transport, tmp_path):
        model, meas, cut = lg_model(), measurements(12), 6

        def mk():
            return MultiprocessDistributedParticleFilter(
                model, adaptive_cfg(), n_workers=2, transport=transport)

        with mk() as pf:
            golden = drive(pf, meas)
            golden_widths = pf.widths.copy()

        path = str(tmp_path / "adaptive.ckpt")
        with mk() as pf:
            head = drive(pf, meas[:cut])
            manifest = pf.save_checkpoint(path)
        assert manifest["meta"]["alloc"]["policy"] == "mass"

        with mk() as pf2:
            pf2.load_checkpoint(path)
            assert pf2.k == cut
            tail = drive(pf2, meas, start=cut)
            np.testing.assert_array_equal(pf2.widths, golden_widths)
        np.testing.assert_array_equal(np.vstack([head, tail]), golden)


class TestSchemaV1Compat:
    """Checkpoints written before the allocation refactor (schema v1, no
    widths array, no allocation config keys) must still load into a
    fixed-policy filter."""

    def _downgrade_to_v1(self, path):
        with zipfile.ZipFile(path) as zf:
            members = {n: zf.read(n) for n in zf.namelist()}
        manifest = json.loads(members[MANIFEST_MEMBER])
        manifest["schema_version"] = 1
        config = manifest["meta"]["config"]
        for key in list(config):
            if key == "allocation" or key.startswith("alloc_"):
                del config[key]
        members[MANIFEST_MEMBER] = json.dumps(manifest).encode()
        with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as zf:
            for name, blob in members.items():
                zf.writestr(name, blob)

    def test_v1_checkpoint_loads_into_fixed_filter(self, tmp_path):
        model, meas, cut = lg_model(), measurements(10), 5
        golden = drive(DistributedParticleFilter(model, cfg()), meas)

        pf = DistributedParticleFilter(model, cfg())
        head = drive(pf, meas[:cut])
        path = str(tmp_path / "v1.ckpt")
        pf.save_checkpoint(path)
        self._downgrade_to_v1(path)

        pf2 = DistributedParticleFilter(model, cfg())
        pf2.load_checkpoint(path)
        assert pf2.k == cut
        tail = drive(pf2, meas, start=cut)
        np.testing.assert_array_equal(np.vstack([head, tail]), golden)
