"""Padded-layout invariants: masking, padding, and the two migration paths."""

import numpy as np
import pytest

from repro.allocation import (
    apply_width_mask,
    pad_population,
    resize_block,
    width_mask,
)
from repro.allocation.migrate import grow_from_pool
from repro.core.registry import make_resampler
from repro.prng import make_rng


def ragged_population(F=3, cap=8, d=2, seed=0):
    rng = np.random.default_rng(seed)
    states = rng.normal(size=(F, cap, d))
    logw = rng.normal(size=(F, cap))
    widths = np.array([8, 4, 6], dtype=np.int64)[:F]
    apply_width_mask(logw, widths)
    return states, logw, widths


class TestMasking:
    def test_width_mask_shape_and_content(self):
        mask = width_mask(np.array([2, 0, 3]), 4)
        expected = np.array([[1, 1, 0, 0], [0, 0, 0, 0], [1, 1, 1, 0]], dtype=bool)
        np.testing.assert_array_equal(mask, expected)

    def test_apply_width_mask_zeroes_padding_only(self):
        logw = np.zeros((2, 4))
        apply_width_mask(logw, np.array([4, 2]))
        assert np.isfinite(logw[0]).all()
        assert np.isfinite(logw[1, :2]).all()
        assert np.isneginf(logw[1, 2:]).all()


class TestPadPopulation:
    def test_equal_capacity_is_identity(self):
        states = np.ones((2, 4, 3))
        logw = np.zeros((2, 4))
        out_s, out_w = pad_population(states, logw, 4)
        assert out_s is states and out_w is logw

    def test_padding_copies_real_states_at_zero_mass(self):
        rng = np.random.default_rng(2)
        states = rng.normal(size=(2, 4, 3))
        logw = rng.normal(size=(2, 4))
        out_s, out_w = pad_population(states, logw, 7)
        np.testing.assert_array_equal(out_s[:, :4], states)
        np.testing.assert_array_equal(out_w[:, :4], logw)
        assert np.isneginf(out_w[:, 4:]).all()
        # Padded states are copies of each row's first particle — real
        # states the model can propagate without NaNs.
        for f in range(2):
            for slot in range(4, 7):
                np.testing.assert_array_equal(out_s[f, slot], states[f, 0])

    def test_capacity_below_width_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            pad_population(np.ones((1, 4, 2)), np.zeros((1, 4)), 3)


class TestResizeBlock:
    def test_shrink_masks_former_tail(self):
        states, logw, widths = ragged_population()
        migrated = resize_block(states, logw, widths, np.array([8, 2, 6]))
        assert migrated == 2
        assert np.isneginf(logw[1, 2:]).all()
        assert np.isfinite(logw[1, :2]).all()

    def test_grow_duplicates_cyclically_with_weights(self):
        states, logw, widths = ragged_population()
        before = states.copy()
        migrated = resize_block(states, logw, widths, np.array([8, 7, 6]))
        assert migrated == 3
        # Slots 4..6 of row 1 replicate live slots 0..2 with their weights.
        for j, src in enumerate(range(4, 7)):
            np.testing.assert_array_equal(states[1, src], before[1, j % 4])
            assert logw[1, src] == logw[1, j % 4]

    def test_no_rng_and_deterministic(self):
        a = ragged_population(seed=5)
        b = ragged_population(seed=5)
        new = np.array([6, 8, 2], dtype=np.int64)
        resize_block(*a[:2], a[2], new)
        resize_block(*b[:2], b[2], new)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_exceeding_capacity_rejected(self):
        states, logw, widths = ragged_population()
        with pytest.raises(ValueError, match="capacity"):
            resize_block(states, logw, widths, np.array([9, 4, 6]))

    def test_migrated_counts_liveness_changes(self):
        states, logw, widths = ragged_population()
        migrated = resize_block(states, logw, widths, np.array([4, 8, 6]))
        assert migrated == 8  # |4-8| + |8-4| + 0


class TestGrowFromPool:
    def test_resampled_rows_draw_from_pool(self):
        states, logw, widths = ragged_population()
        pool_states = np.full((3, 12, 2), 7.0)
        pool_logw = np.zeros((3, 12))
        resampled = np.array([False, True, False])
        migrated = grow_from_pool(
            states, logw, widths, np.array([8, 8, 6]),
            pool_states, pool_logw, resampled,
            make_resampler("systematic"), make_rng("numpy", seed=0))
        assert migrated == 4
        # Grown slots came from the pool (value 7.0) on uniform weights.
        assert (states[1, 4:8] == 7.0).all()
        assert (logw[1, 4:8] == 0.0).all()

    def test_unresampled_rows_fall_back_to_duplication(self):
        states, logw, widths = ragged_population()
        before = states.copy()
        pool_states = np.full((3, 12, 2), 7.0)
        pool_logw = np.zeros((3, 12))
        resampled = np.zeros(3, dtype=bool)
        grow_from_pool(
            states, logw, widths, np.array([8, 6, 6]),
            pool_states, pool_logw, resampled,
            make_resampler("systematic"), make_rng("numpy", seed=0))
        np.testing.assert_array_equal(states[1, 4:6], before[1, :2])

    def test_shrink_needs_no_pool_draw(self):
        states, logw, widths = ragged_population()
        migrated = grow_from_pool(
            states, logw, widths, np.array([8, 4, 3]),
            None, None, np.ones(3, dtype=bool),
            make_resampler("systematic"), make_rng("numpy", seed=0))
        assert migrated == 3
        assert np.isneginf(logw[2, 3:]).all()
