"""Tests for FilterState's reusable scratch-buffer pool."""

import numpy as np

from repro.engine.state import FilterState


def make_state():
    s = FilterState()
    s.reset(np.zeros((2, 4, 3)), np.zeros((2, 4)))
    return s


class TestScratch:
    def test_same_key_reuses_buffer(self):
        s = make_state()
        a = s.scratch("k", (3, 5), np.float64)
        b = s.scratch("k", (3, 5), np.float64)
        assert a is b

    def test_shape_or_dtype_change_reallocates(self):
        s = make_state()
        a = s.scratch("k", (3, 5), np.float64)
        b = s.scratch("k", (3, 6), np.float64)
        assert b.shape == (3, 6) and a is not b
        c = s.scratch("k", (3, 6), np.float32)
        assert c.dtype == np.float32 and c is not b

    def test_keys_are_independent(self):
        s = make_state()
        assert s.scratch("a", (2,), np.float64) is not s.scratch("b", (2,), np.float64)

    def test_recycle_ping_pong_never_aliases(self):
        # The pattern used by sort/resample: gather into scratch, swap the
        # scratch in as live, recycle the old live array. The next scratch()
        # must return the donated buffer, never the now-live one.
        s = make_state()
        live = s.states
        buf = s.scratch("sorted", live.shape, live.dtype)
        assert buf is not live
        s.states = buf
        s.recycle("sorted", live)
        nxt = s.scratch("sorted", live.shape, live.dtype)
        assert nxt is live
        assert nxt is not s.states

    def test_reset_clears_the_pool(self):
        s = make_state()
        a = s.scratch("k", (4,), np.float64)
        s.reset(np.zeros((2, 4, 3)), np.zeros((2, 4)))
        assert s.scratch("k", (4,), np.float64) is not a

    def test_float32_request_never_served_a_float64_recycle(self):
        # Dtype-policy safety regression: a float64 buffer donated under a
        # key must not satisfy a float32 request for the same key/shape —
        # the pool is keyed by (key, shape, dtype), so a float32 run can
        # never be silently upcast by a stale double-precision buffer.
        s = make_state()
        donated = np.empty((3, 5), dtype=np.float64)
        s.recycle("w", donated)
        got32 = s.scratch("w", (3, 5), np.float32)
        assert got32 is not donated
        assert got32.dtype == np.float32
        # The donated buffer still serves float64 requests of its shape.
        assert s.scratch("w", (3, 5), np.float64) is donated
