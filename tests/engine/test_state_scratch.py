"""Tests for FilterState's reusable scratch-buffer pool."""

import numpy as np

from repro.engine.state import FilterState


def make_state():
    s = FilterState()
    s.reset(np.zeros((2, 4, 3)), np.zeros((2, 4)))
    return s


class TestScratch:
    def test_same_key_reuses_buffer(self):
        s = make_state()
        a = s.scratch("k", (3, 5), np.float64)
        b = s.scratch("k", (3, 5), np.float64)
        assert a is b

    def test_shape_or_dtype_change_reallocates(self):
        s = make_state()
        a = s.scratch("k", (3, 5), np.float64)
        b = s.scratch("k", (3, 6), np.float64)
        assert b.shape == (3, 6) and a is not b
        c = s.scratch("k", (3, 6), np.float32)
        assert c.dtype == np.float32 and c is not b

    def test_keys_are_independent(self):
        s = make_state()
        assert s.scratch("a", (2,), np.float64) is not s.scratch("b", (2,), np.float64)

    def test_recycle_ping_pong_never_aliases(self):
        # The pattern used by sort/resample: gather into scratch, swap the
        # scratch in as live, recycle the old live array. The next scratch()
        # must return the donated buffer, never the now-live one.
        s = make_state()
        live = s.states
        buf = s.scratch("sorted", live.shape, live.dtype)
        assert buf is not live
        s.states = buf
        s.recycle("sorted", live)
        nxt = s.scratch("sorted", live.shape, live.dtype)
        assert nxt is live
        assert nxt is not s.states

    def test_reset_clears_the_pool(self):
        s = make_state()
        a = s.scratch("k", (4,), np.float64)
        s.reset(np.zeros((2, 4, 3)), np.zeros((2, 4)))
        assert s.scratch("k", (4,), np.float64) is not a

    def test_float32_request_never_served_a_float64_recycle(self):
        # Dtype-policy safety regression: a float64 buffer donated under a
        # key must not satisfy a float32 request for the same key/shape —
        # the pool is keyed by (key, shape, dtype), so a float32 run can
        # never be silently upcast by a stale double-precision buffer.
        s = make_state()
        donated = np.empty((3, 5), dtype=np.float64)
        s.recycle("w", donated)
        got32 = s.scratch("w", (3, 5), np.float32)
        assert got32 is not donated
        assert got32.dtype == np.float32
        # The donated buffer still serves float64 requests of its shape.
        assert s.scratch("w", (3, 5), np.float64) is donated


class TestScratchStatsAndCap:
    """The session-server additions: observable pool health, bounded size."""

    def test_stats_track_hits_misses_and_bytes(self):
        s = make_state()
        s.scratch("k", (4,), np.float64)
        s.scratch("k", (4,), np.float64)
        s.scratch("j", (2, 8), np.float32)
        stats = s.scratch_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert stats["buffers"] == 2
        assert stats["bytes_held"] == 4 * 8 + 2 * 8 * 4
        assert stats["evictions"] == 0

    def test_cap_evicts_least_recently_used(self):
        s = make_state()
        s.scratch_cap_bytes = 200
        a = s.scratch("a", (16,), np.float64)  # 128 bytes
        s.scratch("b", (8,), np.float64)       # 64 bytes -> 192 held
        s.scratch("a", (16,), np.float64)      # refresh a's recency
        s.scratch("c", (8,), np.float64)       # 256 held -> evict LRU ("b")
        stats = s.scratch_stats()
        assert stats["evictions"] == 1
        assert stats["bytes_held"] == 192
        # "a" survived (recently used); "b" was the eviction victim.
        assert s.scratch("a", (16,), np.float64) is a
        assert s.scratch_stats()["hits"] >= 2

    def test_cap_never_evicts_the_buffer_just_served(self):
        s = make_state()
        s.scratch_cap_bytes = 8
        big = s.scratch("big", (100,), np.float64)  # alone over the cap
        assert s.scratch("big", (100,), np.float64) is big
        assert s.scratch_stats()["buffers"] == 1

    def test_recycle_respects_the_cap(self):
        s = make_state()
        s.scratch_cap_bytes = 100
        s.scratch("a", (8,), np.float64)            # 64 bytes
        s.recycle("d", np.empty(10, np.float64))    # 80 more -> evict "a"
        stats = s.scratch_stats()
        assert stats["evictions"] == 1
        assert stats["bytes_held"] == 80

    def test_clear_scratch_drops_buffers_keeps_counters(self):
        s = make_state()
        s.scratch("k", (4,), np.float64)
        s.scratch("k", (4,), np.float64)
        s.clear_scratch()
        stats = s.scratch_stats()
        assert stats["buffers"] == 0 and stats["bytes_held"] == 0
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_uncapped_pool_never_evicts(self):
        s = make_state()
        for i in range(32):
            s.scratch(f"k{i}", (64,), np.float64)
        assert s.scratch_stats()["evictions"] == 0
        assert s.scratch_stats()["buffers"] == 32
