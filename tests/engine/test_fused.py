"""Tests for the fused execution form: envelope gating, bit-parity with the
reference pipeline, and the per-round fallback on unhealthy populations."""

import numpy as np
import pytest

from repro.core.distributed import DistributedParticleFilter
from repro.core.parameters import DistributedFilterConfig
from repro.engine.fused import fused_envelope_ok, fused_pipeline_applicable
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng


class ScalarAR1(StateSpaceModel):
    """Minimal 1-d AR(1) + Gaussian likelihood, vectorized over any batch."""

    state_dim = 1
    measurement_dim = 1

    def __init__(self, a=0.9, q=0.3, r=0.4):
        self.a, self.q, self.r = a, q, r

    def initial_particles(self, n, rng, dtype=np.float64):
        return rng.normal((n, 1)).astype(dtype, copy=False)

    def initial_state(self, rng):
        return rng.normal((1,))

    def transition(self, states, control, k, rng):
        return self.a * states + self.q * rng.normal(states.shape).astype(
            states.dtype, copy=False)

    def log_likelihood(self, states, measurement, k):
        diff = states[..., 0] - measurement[0]
        return -0.5 * (diff / self.r) ** 2

    def observe(self, state, k, rng):
        return state[:1] + self.r * rng.normal((1,))


class PoisonedAR1(ScalarAR1):
    """Emits an all--inf likelihood at step ``poison_k`` (degenerate round)."""

    def __init__(self, poison_k=3, **kw):
        super().__init__(**kw)
        self.poison_k = poison_k

    def log_likelihood(self, states, measurement, k):
        out = super().log_likelihood(states, measurement, k)
        if k == self.poison_k:
            out = np.full_like(out, -np.inf)
        return out


def run_filter(model, execution, dtype_policy="mixed", steps=8, **cfg_kw):
    cfg_kw.setdefault("topology", "ring")
    cfg_kw.setdefault("n_exchange", 1)
    cfg = DistributedFilterConfig(
        n_filters=8, n_particles=16, seed=11,
        execution=execution, dtype_policy=dtype_policy, **cfg_kw)
    pf = DistributedParticleFilter(model, cfg)
    truth = model.simulate(steps, rng=make_rng("philox", 5))
    estimates = np.array([pf.step(z) for z in truth.measurements])
    return pf, estimates


class TestEnvelope:
    def test_default_config_is_inside_the_envelope(self):
        assert fused_envelope_ok(DistributedFilterConfig())

    @pytest.mark.parametrize("kw", [
        {"roughening": 0.1},
        {"frim_redraws": 2},
        {"resample_policy": "ess", "resample_arg": 0.5},
        {"estimator": "weighted_mean"},
        {"resampler": "systematic"},
        {"allocation": "mass"},
    ])
    def test_off_envelope_configs_are_rejected(self, kw):
        assert not fused_envelope_ok(DistributedFilterConfig(**kw))

    def test_reference_execution_never_fuses(self):
        pf, _ = run_filter(ScalarAR1(), "reference", steps=1)
        assert not fused_pipeline_applicable(pf)
        assert "fused" not in pf.pipeline.stage_names

    def test_compiled_execution_fuses_inside_envelope(self):
        pf, _ = run_filter(ScalarAR1(), "compiled", steps=1)
        assert fused_pipeline_applicable(pf)
        assert pf.pipeline.stage_names == ("fused",)

    def test_compiled_execution_off_envelope_runs_reference_stages(self):
        pf, _ = run_filter(ScalarAR1(), "compiled", steps=1, roughening=0.1)
        assert "fused" not in pf.pipeline.stage_names

    def test_subclass_kernel_override_disables_fusion(self):
        class Variant(DistributedParticleFilter):
            def _resample(self, pooled_states, pooled_logw):
                super()._resample(pooled_states, pooled_logw)

        cfg = DistributedFilterConfig(n_filters=4, n_particles=8,
                                      execution="compiled")
        pf = Variant(ScalarAR1(), cfg)
        assert not fused_pipeline_applicable(pf)
        assert "fused" not in pf.pipeline.stage_names


class TestBitParity:
    @pytest.mark.parametrize("dtype_policy", ["mixed", "float32", "float64"])
    @pytest.mark.parametrize("topology", ["ring", "all_to_all", "none"])
    def test_fused_matches_reference_bitwise(self, topology, dtype_policy):
        kw = {"topology": topology}
        ref, ref_est = run_filter(ScalarAR1(), "reference", dtype_policy, **kw)
        fus, fus_est = run_filter(ScalarAR1(), "compiled", dtype_policy, **kw)
        assert fus.pipeline.stage_names == ("fused",)
        assert np.array_equal(ref_est, fus_est)
        assert np.array_equal(ref.states, fus.states)
        assert np.array_equal(ref.log_weights, fus.log_weights)
        assert ref.states.dtype == fus.states.dtype

    def test_exchange_width_zero_matches(self):
        ref, ref_est = run_filter(ScalarAR1(), "reference", n_exchange=0)
        fus, fus_est = run_filter(ScalarAR1(), "compiled", n_exchange=0)
        assert np.array_equal(ref_est, fus_est)
        assert np.array_equal(ref.states, fus.states)


class TestDegenerateFallback:
    def test_poisoned_round_falls_back_and_stays_bit_identical(self):
        # Step 3 zeroes every likelihood: the fused body's health guard must
        # hand that round to the reference kernel sequence (heal + rescue),
        # and the whole trace — including the rounds after — must still
        # match the reference pipeline bitwise.
        model = PoisonedAR1(poison_k=3)
        ref, ref_est = run_filter(model, "reference", steps=7)
        fus, fus_est = run_filter(model, "compiled", steps=7)
        assert fus.pipeline.stage_names == ("fused",)
        assert np.array_equal(ref_est, fus_est)
        assert np.array_equal(ref.states, fus.states)
        assert np.array_equal(ref.log_weights, fus.log_weights)
        assert fus.heal_counters == ref.heal_counters
        assert sum(fus.heal_counters.values()) > 0
