"""Bit-exactness guard for the stage-pipeline refactor.

The hex traces below were dumped from the pre-refactor
``DistributedParticleFilter`` (inline kernel bodies, no engine). The façade
over :class:`~repro.engine.pipeline.StepPipeline` must reproduce them to the
last bit — same RNG call order, same floating-point operation order — for
every topology and for the full configuration surface (FRIM redraws,
roughening, sampled exchange selection, ESS-gated resampling).
"""

import numpy as np

from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import LinearGaussianModel
from repro.prng import make_rng

N_STEPS = 12

CASES = {
    "ring": dict(n_particles=16, n_filters=8, topology="ring",
                 estimator="weighted_mean", seed=7),
    "torus": dict(n_particles=16, n_filters=16, topology="torus",
                  estimator="weighted_mean", seed=7),
    "all-to-all": dict(n_particles=16, n_filters=8, topology="all-to-all",
                       estimator="max_weight", seed=7),
    "fancy": dict(
        n_particles=16, n_filters=8, topology="ring", estimator="weighted_mean",
        seed=11, n_exchange=2, exchange_select="sample", roughening=0.05,
        frim_redraws=2, resample_policy="ess", resample_arg=0.8, dtype=np.float64,
    ),
}

# float64 estimate sequences, 12 steps each, as raw little-endian bytes.
GOLDEN = {
    "ring": (
        "a21ed885e557d73f49c70886d69ee03ffb76d5bb31c8d73f0d129e09562ce13f"
        "95787f63dd4ee53ff99e37435514c73fbf14dbd23c50cf3fdd023c9864c6d03f"
        "75b636e5ac07d63f151cfa0ca8e9e43f9fa1d7b8c764da3f3524614a87e97abf"
    ),
    "torus": (
        "421a04984893d73fba53489827dbe03f0edca932393cd83fdeee4c13f399e03f"
        "b65ed71a0f36e53fcd6d389bb2bac53fd1df2c193bf8ce3f996fb51161a1d03f"
        "faade1e483bcd53f71f8c99e9dd0e33f4e2089b17539db3f03bb454b0b77a63f"
    ),
    "all-to-all": (
        "000000a0f1f7d93f000000c00784e23f00000000ad71d63f00000060dfdee23f"
        "000000403478e63f000000a033b0c03f00000060c3ffcf3f000000a01c36d13f"
        "0000008062d3d73f000000604bffe53f000000801754d83f000000c0f8fba4bf"
    ),
    "fancy": (
        "f37533a91915d93fdac452c634e5e03fe5c8897ff798d73f548216ac7f0de13f"
        "7ac1f05e4e13e53fcb6a39a83ccfc73fb296010a6d24cf3f976e3c600b16d13f"
        "564bf42a7a46d73f9815fa294c0be43f4434f679c918da3f497b925dffb583bf"
    ),
}


def _trace(case_kwargs) -> str:
    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    truth = model.simulate(N_STEPS, make_rng("numpy", seed=99))
    pf = DistributedParticleFilter(model, DistributedFilterConfig(**case_kwargs))
    pf.initialize()
    ests = np.stack([pf.step(truth.measurements[k]) for k in range(N_STEPS)])
    return ests.astype(np.float64).tobytes().hex()


class TestGoldenTraces:
    def test_ring(self):
        assert _trace(CASES["ring"]) == GOLDEN["ring"]

    def test_torus(self):
        assert _trace(CASES["torus"]) == GOLDEN["torus"]

    def test_all_to_all(self):
        assert _trace(CASES["all-to-all"]) == GOLDEN["all-to-all"]

    def test_full_config_surface(self):
        assert _trace(CASES["fancy"]) == GOLDEN["fancy"]
