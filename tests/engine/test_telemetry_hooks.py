"""Telemetry through the engine hooks: spans, cost attrs, error isolation."""

import warnings

import numpy as np
import pytest

from repro.backends import SequentialDistributedParticleFilter
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import LinearGaussianModel
from repro.telemetry import reset_hook_error_warnings


def _model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def _cfg(**kw):
    base = dict(n_particles=16, n_filters=4, n_exchange=2, seed=0)
    base.update(kw)
    return DistributedFilterConfig(**base)


def _run(pf, steps=3):
    pf.initialize()
    return np.array([pf.step(np.array([0.1 * k])) for k in range(steps)])


class RaisingHook:
    """An observer that always blows up."""

    def on_step_start(self, state):
        raise RuntimeError("boom")

    def on_stage_start(self, name, state):
        raise RuntimeError("boom")

    def on_stage_end(self, name, state, elapsed):
        raise RuntimeError("boom")

    def on_step_end(self, state):
        raise RuntimeError("boom")


class TestVectorizedTracing:
    def test_disabled_by_default_and_spans_empty(self):
        pf = DistributedParticleFilter(_model(), _cfg())
        assert pf.tracer.enabled is False
        _run(pf)
        assert pf.tracer.spans == []
        # Legacy accessors still fully populated.
        assert pf.timer.seconds and pf.kernel_seconds

    def test_enabled_emits_step_stage_kernel_hierarchy(self):
        pf = DistributedParticleFilter(_model(), _cfg())
        pf.tracer.enabled = True
        _run(pf, steps=2)
        kinds = {s.kind for s in pf.tracer.spans}
        assert kinds == {"step", "stage", "kernel"}
        steps = [s for s in pf.tracer.spans if s.kind == "step"]
        assert [s.name for s in steps] == ["step 0", "step 1"]
        stage_names = {s.name for s in pf.tracer.spans if s.kind == "stage"}
        assert {"sampling", "sort", "estimate", "exchange"} <= stage_names
        # Stages nest inside their step.
        s0 = steps[0]
        inner = [s for s in pf.tracer.spans
                 if s.kind == "stage" and s0.start <= s.start and s.end <= s0.end]
        assert inner

    def test_kernel_spans_carry_cost_attrs(self):
        pf = DistributedParticleFilter(_model(), _cfg())
        pf.tracer.enabled = True
        _run(pf)
        kernels = [s for s in pf.tracer.spans if s.kind == "kernel"]
        assert kernels
        costed = [s for s in kernels if s.attrs and "flops" in s.attrs]
        assert costed, "registered kernels must carry CostSig-derived attrs"
        for s in costed:
            assert s.attrs["flops"] >= 0
            assert {"bytes_read", "bytes_written", "launches"} <= set(s.attrs)

    def test_tracing_does_not_change_estimates(self):
        plain = _run(DistributedParticleFilter(_model(), _cfg()))
        traced_pf = DistributedParticleFilter(_model(), _cfg())
        traced_pf.tracer.enabled = True
        np.testing.assert_array_equal(plain, _run(traced_pf))

    def test_sequential_oracle_traces_too(self):
        pf = SequentialDistributedParticleFilter(_model(), _cfg())
        pf.tracer.enabled = True
        _run(pf, steps=2)
        assert {s.kind for s in pf.tracer.spans} >= {"step", "stage"}


class TestHookErrorIsolation:
    def test_raising_hook_does_not_corrupt_the_step(self):
        reset_hook_error_warnings()
        clean = _run(DistributedParticleFilter(_model(), _cfg()))
        pf = DistributedParticleFilter(_model(), _cfg())
        pf.pipeline.add_hook(RaisingHook())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = _run(pf)
        np.testing.assert_array_equal(clean, out)
        # Every callback of every stage raised; all were counted.
        assert pf.telemetry_errors > 0
        assert pf.pipeline.telemetry_errors == pf.telemetry_errors
        # Warned once per HookClass.method site, not once per failure.
        sites = {str(w.message) for w in caught
                 if issubclass(w.category, RuntimeWarning)}
        assert 1 <= len(sites) <= 4
        reset_hook_error_warnings()

    def test_raising_hook_keeps_other_hooks_working(self):
        reset_hook_error_warnings()
        pf = DistributedParticleFilter(_model(), _cfg())
        pf.pipeline.hooks.insert(0, RaisingHook())  # before TimerHook
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _run(pf)
        assert pf.timer.seconds and pf.kernel_seconds
        assert pf.timer.fractions()
        reset_hook_error_warnings()

    def test_stage_exceptions_still_propagate(self):
        # Isolation covers observers only — a failing *stage* is a real error.
        class BrokenStage:
            name = "sampling"

            def run(self, ctx, state):
                raise RuntimeError("stage died")

        pf = DistributedParticleFilter(_model(), _cfg())
        pf.initialize()
        pf.pipeline.stages[0] = BrokenStage()
        with pytest.raises(RuntimeError, match="stage died"):
            pf.step(np.array([0.0]))


def test_phase_timer_fractions_empty_when_no_time():
    from repro.metrics import PhaseTimer

    timer = PhaseTimer()
    assert timer.fractions() == {}
    with timer.phase("a"):
        pass
    timer.reset()
    assert timer.fractions() == {}
