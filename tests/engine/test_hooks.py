"""Stage hooks: observation without participation."""

import dataclasses
import time

import pytest

from repro.backends import DeviceSimulatedFilter
from repro.backends.device_backend import DeviceCostHook
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.engine import STAGE_NAMES, RecordingHook, StageHook, TimerHook
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def _model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def _cfg(**kw):
    base = dict(n_particles=16, n_filters=4, topology="ring", seed=3)
    base.update(kw)
    return DistributedFilterConfig(**base)


def _run(pf, n=2, seed=5):
    model = pf.inner.model if hasattr(pf, "inner") else pf.model
    truth = model.simulate(n, make_rng("numpy", seed=seed))
    pf.initialize()
    for k in range(n):
        pf.step(truth.measurements[k])
    return truth


class TestHookEvents:
    def test_event_sequence(self):
        model = _model()
        pf = DistributedParticleFilter(model, _cfg())
        rec = pf.pipeline.add_hook(RecordingHook())
        _run(pf, n=1)
        kinds = [e[0] for e in rec.events]
        assert kinds[0] == "step_start" and kinds[-1] == "step_end"
        starts = [e[1] for e in rec.events if e[0] == "start"]
        ends = [e[1] for e in rec.events if e[0] == "end"]
        assert tuple(starts) == tuple(ends) == STAGE_NAMES
        for e in rec.events:
            if e[0] == "end":
                assert e[2] >= 0.0

    def test_hook_sees_state_snapshot(self):
        model = _model()
        pf = DistributedParticleFilter(model, _cfg())
        seen = {}

        class Peek(StageHook):
            def on_stage_end(self, name, state, elapsed):
                snap = state.snapshot()
                seen[name] = (snap.k, state.n_filters, state.n_particles)

        pf.pipeline.add_hook(Peek())
        _run(pf, n=1)
        assert set(seen) == set(STAGE_NAMES)
        assert all(v == (0, 4, 16) for v in seen.values())

    def test_timer_hook_populates_canonical_phases(self):
        model = _model()
        pf = DistributedParticleFilter(model, _cfg())
        _run(pf, n=2)
        for name in STAGE_NAMES:
            assert name in pf.timer.seconds
        assert pf.timer.total() > 0.0

    def test_standalone_timer_hook(self):
        hook = TimerHook()
        hook.on_stage_start("sampling", None)
        hook.on_stage_end("sampling", None, 0.0)
        assert hook.timer.seconds["sampling"] >= 0.0


class TestDeviceCostHook:
    def test_charges_round_cost_per_step(self):
        model = _model()
        sim = DeviceSimulatedFilter(DistributedParticleFilter(model, _cfg()), "gtx-580")
        _run(sim, n=3)
        assert sim.simulated_seconds == pytest.approx(3 * sim.round_cost.total_seconds)
        # Per-kernel accumulation matches the cost model's breakdown keys.
        assert set(sim.simulated_kernel_seconds) == set(sim.round_cost.seconds)
        for k, v in sim.round_cost.seconds.items():
            assert sim.simulated_kernel_seconds[k] == pytest.approx(3 * v)

    def test_round_cost_recomputes_on_config_change(self):
        """Satellite: a config swap after construction invalidates the cache."""
        model = _model()
        sim = DeviceSimulatedFilter(DistributedParticleFilter(model, _cfg()), "gtx-580")
        before = sim.round_cost.total_seconds
        sim.inner.config = dataclasses.replace(sim.inner.config, n_particles=256)
        after = sim.round_cost.total_seconds
        assert after > before

    def test_update_rate_guarded_against_zero_total(self):
        """Satellite: an all-zero cost reports inf, not ZeroDivisionError."""
        model = _model()
        sim = DeviceSimulatedFilter(DistributedParticleFilter(model, _cfg()), "gtx-580")
        cost = sim.round_cost
        cost.seconds = {k: 0.0 for k in cost.seconds}
        assert sim.simulated_update_rate_hz == float("inf")

    def test_unpriced_stage_charges_nothing(self):
        hook = DeviceCostHook(lambda: type("C", (), {"seconds": {"sampling": 1.0}})())
        hook.on_stage_end("heal", None, 0.0)
        assert hook.simulated_seconds == 0.0


class TestHookOverhead:
    def test_noop_hooks_are_cheap(self):
        """A handful of no-op observers must not dominate the round."""
        model = _model()
        cfg = _cfg(n_particles=256, n_filters=16)
        truth = model.simulate(30, make_rng("numpy", seed=5))

        def timed(n_hooks):
            pf = DistributedParticleFilter(model, cfg)
            pf.pipeline.hooks = [StageHook() for _ in range(n_hooks)]
            pf.initialize()
            begin = time.perf_counter()
            for k in range(30):
                pf.step(truth.measurements[k])
            return time.perf_counter() - begin

        timed(0)  # warm caches
        bare = min(timed(0) for _ in range(3))
        hooked = min(timed(4) for _ in range(3))
        # Generous CI margin; locally the overhead is well under 5%.
        assert hooked <= bare * 1.5
