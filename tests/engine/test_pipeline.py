"""The shared stage pipeline: one canonical round, every backend."""

import numpy as np
import pytest

from repro.backends import SequentialDistributedParticleFilter
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.engine import STAGE_NAMES, Stage, StepPipeline
from repro.engine.loop_stages import build_loop_pipeline
from repro.engine.vector_stages import build_vector_pipeline
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def _model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def _cfg(**kw):
    base = dict(n_particles=16, n_filters=4, topology="ring", seed=3)
    base.update(kw)
    return DistributedFilterConfig(**base)


class TestCanonicalStages:
    def test_vector_pipeline_stage_names(self):
        assert build_vector_pipeline().stage_names == STAGE_NAMES

    def test_loop_pipeline_stage_names(self):
        assert build_loop_pipeline().stage_names == STAGE_NAMES

    def test_backends_share_stage_names(self):
        model = _model()
        vec = DistributedParticleFilter(model, _cfg())
        seq = SequentialDistributedParticleFilter(model, _cfg())
        assert vec.pipeline.stage_names == seq.pipeline.stage_names == STAGE_NAMES

    def test_stages_satisfy_protocol(self):
        for stage in build_vector_pipeline().stages + build_loop_pipeline().stages:
            assert isinstance(stage, Stage)


class TestStepPipeline:
    def test_run_advances_step_counter_and_returns_estimate(self):
        model = _model()
        pf = DistributedParticleFilter(model, _cfg())
        pf.initialize()
        truth = model.simulate(3, make_rng("numpy", seed=5))
        for k in range(3):
            est = pf.step(truth.measurements[k])
            assert est.shape == (model.state_dim,)
            assert np.all(np.isfinite(est))
        assert pf.k == 3

    def test_run_stages_partial_round(self):
        """Workers run a stage subset without touching the step counter."""
        from repro.engine import ExecutionContext, FilterState
        from repro.engine.vector_stages import LocalHealStage, SampleWeightStage, SortStage
        from repro.core.registry import make_policy, make_resampler

        model = _model()
        cfg = _cfg()
        rng = make_rng(cfg.rng, cfg.seed)
        ctx = ExecutionContext(
            model=model, config=cfg, rng=rng,
            resampler=make_resampler(cfg.resampler),
            policy=make_policy(cfg.resample_policy, cfg.resample_arg),
            dtype=np.dtype(cfg.dtype),
        )
        state = FilterState()
        flat = model.initial_particles(cfg.total_particles, rng, dtype=ctx.dtype)
        state.reset(flat.reshape(cfg.n_filters, cfg.n_particles, model.state_dim),
                    np.zeros((cfg.n_filters, cfg.n_particles)))
        state.measurement = np.zeros(model.measurement_dim)
        pipe = StepPipeline([SampleWeightStage(), LocalHealStage(), SortStage(force=True)])
        pipe.run_stages(ctx, state)
        assert state.k == 0
        # Rows sorted descending by weight after the forced sort.
        assert np.all(np.diff(state.log_weights, axis=1) <= 1e-12)

    def test_add_remove_hook(self):
        from repro.engine import RecordingHook

        pipe = build_vector_pipeline()
        hook = pipe.add_hook(RecordingHook())
        assert hook in pipe.hooks
        pipe.remove_hook(hook)
        assert hook not in pipe.hooks


class TestOracleParity:
    """The loop oracle and the vectorized filter run the same pipeline
    protocol and agree statistically (different RNG call layouts)."""

    def _rmse(self, pf, model, truth, n):
        pf.initialize()
        ests = np.stack([pf.step(truth.measurements[k]) for k in range(n)])
        return float(np.sqrt(np.mean((ests - truth.states[:n]) ** 2)))

    def test_estimates_agree(self):
        model = _model()
        n = 20
        truth = model.simulate(n, make_rng("numpy", seed=42))
        kw = dict(n_particles=64, n_filters=4, topology="ring", seed=3)
        vec_rmse = self._rmse(DistributedParticleFilter(model, _cfg(**kw)), model, truth, n)
        seq_rmse = self._rmse(
            SequentialDistributedParticleFilter(model, _cfg(**kw)), model, truth, n
        )
        assert vec_rmse < 0.5 and seq_rmse < 0.5
        assert abs(vec_rmse - seq_rmse) < 0.25

    def test_oracle_kernel_seconds_populated(self):
        """Satellite: the oracle's per-stage timings were previously empty."""
        model = _model()
        seq = SequentialDistributedParticleFilter(model, _cfg())
        seq.initialize()
        truth = model.simulate(2, make_rng("numpy", seed=5))
        seq.step(truth.measurements[0])
        for name in STAGE_NAMES:
            assert name in seq.timer.seconds
            assert seq.timer.seconds[name] >= 0.0
        assert "rand" in seq.timer.seconds  # nested PRNG phase still billed

    @pytest.mark.parametrize("kw", [
        dict(roughening=0.05),
        dict(frim_redraws=2),
        dict(exchange_select="sample"),
    ])
    def test_oracle_config_parity(self, kw):
        """Satellite: the oracle honours the full configuration surface."""
        model = _model()
        seq = SequentialDistributedParticleFilter(model, _cfg(**kw))
        seq.initialize()
        truth = model.simulate(4, make_rng("numpy", seed=5))
        for k in range(4):
            est = seq.step(truth.measurements[k])
            assert np.all(np.isfinite(est))
