"""Tests for the run driver and metrics plumbing."""

import numpy as np
import pytest

from repro.core import CentralizedFilterConfig, CentralizedParticleFilter, average_error, run_filter
from repro.metrics import PhaseTimer, TimingRNG, convergence_step, rmse, time_averaged_error
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def test_run_filter_shapes():
    model = lg_model()
    truth = model.simulate(12, make_rng("numpy", seed=0))
    pf = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=64, seed=0))
    run = run_filter(pf, model, truth)
    assert run.estimates.shape == (12, 1)
    assert run.errors.shape == (12,)
    assert run.n_steps == 12
    assert run.wall_seconds > 0


def test_average_error_over_runs():
    model = lg_model()

    def make_truth(r):
        return model.simulate(20, make_rng("numpy", seed=100 + r))

    def make_filter(r):
        return CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=256, seed=r))

    err = average_error(make_filter, make_truth, model, n_runs=3, warmup=5)
    assert 0 < err < 0.5


def test_time_averaged_error_warmup():
    errors = np.array([10.0, 10.0, 1.0, 1.0])
    assert time_averaged_error(errors, warmup=2) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        time_averaged_error(errors, warmup=4)


def test_rmse():
    est = np.array([[0.0, 0.0], [1.0, 1.0]])
    tru = np.array([[3.0, 4.0], [1.0, 1.0]])
    assert rmse(est, tru) == pytest.approx(np.sqrt(25.0 / 2))


def test_convergence_step():
    errors = np.array([5.0, 4.0, 0.1, 0.1, 0.1, 0.1, 0.1])
    assert convergence_step(errors, threshold=0.5, hold=3) == 2
    assert convergence_step(np.full(10, 9.0), threshold=0.5) is None


def test_phase_timer_nesting_attribution():
    import time

    timer = PhaseTimer()
    with timer.phase("outer"):
        time.sleep(0.01)
        with timer.phase("inner"):
            time.sleep(0.01)
    assert timer.seconds["inner"] >= 0.009
    # Inner time must NOT be double counted in outer.
    assert timer.seconds["outer"] < timer.seconds["inner"] * 3
    assert timer.total() >= 0.019
    fr = timer.fractions()
    assert abs(sum(fr.values()) - 1.0) < 1e-9
    timer.reset()
    assert timer.total() == 0.0


def test_timing_rng_bills_rand_phase():
    timer = PhaseTimer()
    rng = TimingRNG(make_rng("numpy", seed=0), timer)
    with timer.phase("sampling"):
        rng.normal((200_000,))
    assert timer.seconds["rand"] > 0
    assert "sampling" in timer.seconds


def test_timing_rng_spawn_keeps_timer():
    timer = PhaseTimer()
    rng = TimingRNG(make_rng("numpy", seed=0), timer)
    child = rng.spawn(3)
    child.uniform((10,))
    assert timer.seconds["rand"] > 0
