"""Tests for FRIM (finite-redraw importance-maximizing) sampling."""

import numpy as np
import pytest

from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.core.frim import frim_sample
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def test_zero_redraws_is_plain_sampling():
    model = lg_model()
    prev = np.zeros((4, 8, 1))
    z = np.array([0.1])
    s0, ll0 = frim_sample(model, prev, z, None, 0, make_rng("numpy", seed=1), redraws=0)
    pf_rng = make_rng("numpy", seed=1)
    s1 = model.transition(prev, None, 0, pf_rng)
    np.testing.assert_array_equal(s0, s1)
    assert ll0.shape == (4, 8)


def test_redraws_never_decrease_likelihood():
    model = lg_model()
    prev = np.zeros((4, 32, 1))
    z = np.array([0.3])
    rng_a, rng_b = make_rng("numpy", seed=2), make_rng("numpy", seed=2)
    _, ll_plain = frim_sample(model, prev, z, None, 0, rng_a, redraws=0)
    _, ll_frim = frim_sample(model, prev, z, None, 0, rng_b, redraws=4)
    # Same first draw; redraws only ever replace a particle with a better one.
    assert (ll_frim >= ll_plain - 1e-12).all()
    assert ll_frim.mean() > ll_plain.mean()


def test_redraw_count_is_bounded():
    # The redraw loop performs at most `redraws` extra transition calls:
    # count them via a wrapping model.
    model = lg_model()
    calls = []
    original = model.transition

    def counting(states, control, k, rng):
        calls.append(1)
        return original(states, control, k, rng)

    model.transition = counting
    frim_sample(model, np.zeros((2, 16, 1)), np.array([5.0]), None, 0, make_rng("numpy", seed=3), redraws=3)
    assert len(calls) <= 4  # 1 initial + at most 3 redraws


def test_quantile_validation():
    model = lg_model()
    with pytest.raises(ValueError):
        frim_sample(model, np.zeros((1, 4, 1)), np.array([0.0]), None, 0, make_rng("numpy", seed=0), redraws=1, quantile=0.0)


def test_config_validation():
    with pytest.raises(ValueError):
        DistributedFilterConfig(frim_redraws=-1)
    with pytest.raises(ValueError):
        DistributedFilterConfig(frim_quantile=1.0)


def test_frim_filter_tracks_and_helps_small_populations():
    model = lg_model()
    base = dict(n_particles=8, n_filters=8, estimator="weighted_mean")
    errs = {}
    for label, redraws in (("plain", 0), ("frim", 3)):
        acc = []
        for r in range(5):
            truth = model.simulate(40, make_rng("numpy", seed=300 + r))
            cfg = DistributedFilterConfig(**base, frim_redraws=redraws, seed=r)
            run = run_filter(DistributedParticleFilter(model, cfg), model, truth)
            acc.append(run.mean_error(warmup=10))
        errs[label] = float(np.mean(acc))
    # FRIM should not hurt (it was proposed to reduce the particles needed).
    assert errs["frim"] < errs["plain"] * 1.15 + 0.02
