"""Numerical robustness: the filter must survive pathological weights."""

import numpy as np

from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
)
from repro.models import LinearGaussianModel
from repro.models.base import StateSpaceModel


class HostileModel(StateSpaceModel):
    """A model whose likelihood can underflow to 'all particles impossible'."""

    state_dim = 1
    measurement_dim = 1
    control_dim = 0

    def __init__(self, sigma=1e-8):
        self.sigma = sigma

    def initial_particles(self, n, rng, dtype=np.float64):
        return rng.normal((n, 1), dtype=dtype)

    def transition(self, states, control, k, rng):
        return np.asarray(states) + 0.01 * rng.normal(np.asarray(states).shape).astype(np.asarray(states).dtype)

    def log_likelihood(self, states, measurement, k):
        # Absurdly peaked likelihood: virtually every particle gets -1e20.
        d = (np.asarray(states)[..., 0] - float(np.asarray(measurement).reshape(()))) / self.sigma
        return -0.5 * d * d

    def initial_state(self, rng):
        return np.zeros(1)

    def observe(self, state, k, rng):
        return np.asarray(state) + self.sigma * rng.normal((1,))


def test_distributed_survives_total_underflow():
    # Measurement far from every particle: all weights underflow to zero
    # after the shift-exp; the resampler's uniform fallback must keep the
    # filter alive and finite.
    model = HostileModel()
    pf = DistributedParticleFilter(
        model, DistributedFilterConfig(n_particles=16, n_filters=8, estimator="weighted_mean", seed=0)
    )
    est = pf.step(np.array([1e6]))  # hopeless measurement
    assert np.isfinite(est).all()
    assert np.isfinite(pf.states).all()
    # And it keeps going on subsequent steps.
    est = pf.step(np.array([0.0]))
    assert np.isfinite(est).all()


def test_centralized_survives_total_underflow():
    model = HostileModel()
    pf = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=64, resampler="rws", seed=0))
    est = pf.step(np.array([1e6]))
    assert np.isfinite(est).all()
    assert np.isfinite(pf.states).all()


def test_extreme_but_finite_logweights_do_not_overflow():
    model = HostileModel(sigma=1e-4)
    pf = DistributedParticleFilter(
        model, DistributedFilterConfig(n_particles=32, n_filters=4, estimator="max_weight", seed=1)
    )
    for z in (0.0, 0.5, -0.5):
        est = pf.step(np.array([z]))
        assert np.isfinite(est).all()
    assert not np.isnan(pf.log_weights).any()


def test_same_seed_identical_different_seed_different():
    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    def run(seed):
        pf = DistributedParticleFilter(
            model, DistributedFilterConfig(n_particles=16, n_filters=8, seed=seed)
        )
        return np.stack([pf.step(np.array([0.1])) for _ in range(5)])

    a, b, c = run(7), run(7), run(8)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


def test_filter_with_philox_rng_backend():
    # The from-scratch counter-based generator drives a whole filter run.
    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    pf = DistributedParticleFilter(
        model,
        DistributedFilterConfig(n_particles=16, n_filters=8, rng="philox", estimator="weighted_mean", seed=5),
    )
    ests = [pf.step(np.array([0.2]))[0] for _ in range(10)]
    assert np.isfinite(ests).all()
    # Posterior should move toward the repeated measurement.
    assert abs(ests[-1] - 0.2) < 0.4


def test_filter_with_xorshift_rng_backend():
    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    pf = DistributedParticleFilter(
        model,
        DistributedFilterConfig(n_particles=16, n_filters=8, rng="xorshift", estimator="weighted_mean", seed=5),
    )
    ests = [pf.step(np.array([0.2]))[0] for _ in range(10)]
    assert np.isfinite(ests).all()
