"""Tests for filter configuration (Tables I and II)."""

import numpy as np
import pytest

from repro.core import (
    CentralizedFilterConfig,
    DEFAULT_CPU_CONFIG,
    DEFAULT_GPU_CONFIG,
    DistributedFilterConfig,
)


def test_table2_gpu_defaults():
    cfg = DEFAULT_GPU_CONFIG
    assert cfg.n_particles == 512
    assert cfg.n_filters == 1024
    assert cfg.topology == "ring"
    assert cfg.n_exchange == 1
    assert np.dtype(cfg.dtype) == np.float32  # single precision on device


def test_table2_cpu_defaults():
    assert DEFAULT_CPU_CONFIG.n_particles == 64
    assert DEFAULT_CPU_CONFIG.n_filters == 1024


def test_total_particles():
    assert DistributedFilterConfig(n_particles=8, n_filters=4).total_particles == 32


def test_with_creates_modified_copy():
    base = DistributedFilterConfig(n_particles=8, n_filters=4)
    mod = base.with_(n_filters=16)
    assert mod.n_filters == 16 and base.n_filters == 4
    assert mod.n_particles == 8


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_particles=0),
        dict(n_filters=-1),
        dict(n_exchange=-1),
        dict(n_particles=4, n_exchange=5),
        dict(estimator="median"),
        dict(exchange_select="worst"),
        dict(selection="heap"),
        dict(resample_policy="sometimes"),
        dict(dtype=np.int32),
    ],
)
def test_distributed_validation(kwargs):
    with pytest.raises((ValueError, TypeError)):
        DistributedFilterConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [dict(n_particles=0), dict(estimator="mode"), dict(resample_policy="never"), dict(dtype="int8")],
)
def test_centralized_validation(kwargs):
    with pytest.raises((ValueError, TypeError)):
        CentralizedFilterConfig(**kwargs)


def test_configs_are_frozen():
    cfg = DistributedFilterConfig()
    with pytest.raises(Exception):
        cfg.n_particles = 3
