"""Tests for the dtype policy: resolution, config validation, and how the
resolved dtypes thread through the vectorized filter."""

import numpy as np
import pytest

from repro.core.distributed import DistributedParticleFilter
from repro.core.dtypes import DTYPE_POLICY_NAMES, resolve_dtype_policy
from repro.core.parameters import DistributedFilterConfig
from repro.models.base import StateSpaceModel
from repro.prng.streams import make_rng


class TinyModel(StateSpaceModel):
    state_dim = 1
    measurement_dim = 1

    def initial_particles(self, n, rng, dtype=np.float64):
        return rng.normal((n, 1)).astype(dtype, copy=False)

    def initial_state(self, rng):
        return rng.normal((1,))

    def transition(self, states, control, k, rng):
        return 0.9 * states + 0.3 * rng.normal(states.shape).astype(
            states.dtype, copy=False)

    def log_likelihood(self, states, measurement, k):
        return -0.5 * (states[..., 0] - measurement[0]) ** 2

    def observe(self, state, k, rng):
        return state[:1] + 0.4 * rng.normal((1,))


class TestResolve:
    def test_mixed_keeps_config_dtype_with_float64_weights(self):
        p = resolve_dtype_policy("mixed", np.float32)
        assert (p.state, p.weight, p.reduce) == (
            np.dtype(np.float32), np.dtype(np.float64), np.dtype(np.float64))

    def test_float32_forces_state_and_weight_keeps_reduce_double(self):
        p = resolve_dtype_policy("float32", np.float64)
        assert (p.state, p.weight, p.reduce) == (
            np.dtype(np.float32), np.dtype(np.float32), np.dtype(np.float64))

    def test_float64_forces_everything_double(self):
        p = resolve_dtype_policy("float64", np.float32)
        assert p.state == p.weight == p.reduce == np.dtype(np.float64)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="dtype_policy"):
            resolve_dtype_policy("float16")

    def test_tolerance_is_zero_unless_weights_are_float32(self):
        assert resolve_dtype_policy("mixed").tolerance == 0.0
        assert resolve_dtype_policy("float64").tolerance == 0.0
        assert resolve_dtype_policy("float32").tolerance > 0.0


class TestConfigValidation:
    def test_defaults_are_reference_and_mixed(self):
        cfg = DistributedFilterConfig()
        assert cfg.execution == "reference"
        assert cfg.dtype_policy == "mixed"

    @pytest.mark.parametrize("name", DTYPE_POLICY_NAMES)
    def test_every_policy_name_is_accepted(self, name):
        assert DistributedFilterConfig(dtype_policy=name).dtype_policy == name

    def test_bad_policy_name_rejected(self):
        with pytest.raises(ValueError):
            DistributedFilterConfig(dtype_policy="double")

    def test_bad_execution_rejected(self):
        with pytest.raises(ValueError):
            DistributedFilterConfig(execution="jit")


class TestFilterThreading:
    def run(self, **cfg_kw):
        cfg = DistributedFilterConfig(n_filters=4, n_particles=8, n_exchange=1,
                                      topology="ring", seed=2, **cfg_kw)
        pf = DistributedParticleFilter(TinyModel(), cfg)
        truth = TinyModel().simulate(3, rng=make_rng("philox", 4))
        for z in truth.measurements:
            pf.step(z)
        return pf

    def test_float32_policy_population_dtypes(self):
        pf = self.run(dtype_policy="float32")
        assert pf.states.dtype == np.float32
        assert pf.log_weights.dtype == np.float32

    def test_mixed_policy_keeps_float64_weights_over_float32_states(self):
        pf = self.run(dtype_policy="mixed", dtype="float32")
        assert pf.states.dtype == np.float32
        assert pf.log_weights.dtype == np.float64

    def test_mixed_default_is_bit_identical_to_pre_policy_behaviour(self):
        # dtype_policy never mentioned == the historical configuration; the
        # explicit "mixed" spelling must not perturb anything.
        a = self.run()
        b = self.run(dtype_policy="mixed")
        assert np.array_equal(a.states, b.states)
        assert np.array_equal(a.log_weights, b.log_weights)

    def test_float32_estimates_track_float64_within_policy_tolerance(self):
        a = self.run(dtype_policy="float64")
        b = self.run(dtype_policy="float32")
        # Same seed, same draws (the transition noise is rounded, not
        # re-drawn): trajectories stay within a loose absolute band.
        assert np.allclose(a.last_estimate, b.last_estimate, atol=0.2)
