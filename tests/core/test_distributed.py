"""Tests for the distributed particle filter (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_filter,
)
from repro.models import LinearGaussianModel, RobotArmModel, lemniscate, simulate_arm_tracking
from repro.prng import make_rng
from repro.topology import RingTopology


def lg_model():
    return LinearGaussianModel(
        A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]], x0_mean=[0.0], x0_cov=[[1.0]]
    )


def small_cfg(**kw):
    base = dict(n_particles=32, n_filters=16, seed=0, estimator="weighted_mean")
    base.update(kw)
    return DistributedFilterConfig(**base)


def test_initialize_shapes():
    pf = DistributedParticleFilter(lg_model(), small_cfg())
    pf.initialize()
    assert pf.states.shape == (16, 32, 1)
    assert pf.log_weights.shape == (16, 32)


def test_step_returns_estimate():
    pf = DistributedParticleFilter(lg_model(), small_cfg())
    est = pf.step(np.array([0.2]))
    assert est.shape == (1,)
    assert pf.k == 1


@pytest.mark.parametrize("topology", ["ring", "torus", "all-to-all", "none"])
def test_topologies_run_and_track(topology):
    model = lg_model()
    truth = model.simulate(40, make_rng("numpy", seed=1))
    pf = DistributedParticleFilter(model, small_cfg(topology=topology))
    run = run_filter(pf, model, truth)
    assert run.mean_error(warmup=10) < 0.25


def test_prebuilt_topology_object():
    topo = RingTopology(16)
    pf = DistributedParticleFilter(lg_model(), small_cfg(topology=topo))
    assert pf.topology is topo


def test_topology_size_mismatch():
    with pytest.raises(ValueError):
        DistributedParticleFilter(lg_model(), small_cfg(topology=RingTopology(8)))


def test_resampling_resets_weights_rowwise():
    pf = DistributedParticleFilter(lg_model(), small_cfg())
    pf.step(np.array([0.0]))
    assert np.all(pf.log_weights == 0.0)


def test_exchange_zero_keeps_filters_isolated():
    # With t=0 and distinct priors the sub-filter populations never mix:
    # run two steps and check no particle crossed filters. We tag particles
    # by giving each filter's prior a distinct offset through a custom model.
    model = lg_model()
    pf = DistributedParticleFilter(model, small_cfg(n_exchange=0, resample_policy="frequency", resample_arg=0.0))
    pf.initialize()
    tag = np.arange(16, dtype=float)[:, None, None] * 100.0
    pf.states = pf.states + tag
    pf.step(np.array([0.0]))
    # No resampling, no exchange: row f's particles stay near its own tag
    # evolved through the dynamics (A = 0.9), no cross-row jumps.
    for f in range(16):
        assert np.abs(pf.states[f] - 90.0 * f).max() < 20.0


def test_exchange_propagates_good_particles():
    # Plant an excellent particle in filter 0 and verify that after exchange +
    # resampling its state spreads to neighbours.
    model = lg_model()
    pf = DistributedParticleFilter(
        model, small_cfg(n_exchange=4, topology="ring", resampler="systematic")
    )
    pf.initialize()
    pf.states[:] = 100.0  # everyone far from the measurement
    pf.states[0, 0] = 0.0  # except one particle in filter 0
    pf.step(np.array([0.0]))
    # Neighbours of filter 0 (ring: 1 and 15) should now hold near-zero states.
    for nb in (1, 15):
        assert np.abs(pf.states[nb]).min() < 5.0
    # A distant filter should still be far away after a single round.
    assert np.abs(pf.states[8]).min() > 5.0


def test_all_to_all_floods_best_particle_everywhere():
    model = lg_model()
    pf = DistributedParticleFilter(model, small_cfg(topology="all-to-all", n_exchange=2))
    pf.initialize()
    pf.states[:] = 100.0
    pf.states[3, 7] = 0.0
    pf.step(np.array([0.0]))
    # Every sub-filter read back the same global best: all rows contain it.
    assert all(np.abs(pf.states[f]).min() < 5.0 for f in range(16))


@pytest.mark.parametrize("selection", ["sort", "max"])
def test_selection_modes_track(selection):
    model = lg_model()
    truth = model.simulate(30, make_rng("numpy", seed=2))
    pf = DistributedParticleFilter(model, small_cfg(selection=selection))
    assert run_filter(pf, model, truth).mean_error(warmup=10) < 0.25


def test_sort_orders_rows_descending():
    pf = DistributedParticleFilter(lg_model(), small_cfg(resample_policy="frequency", resample_arg=0.0))
    pf.step(np.array([0.0]))
    lw = pf.log_weights
    assert np.all(np.diff(lw, axis=1) <= 1e-12)


@pytest.mark.parametrize("exchange_select", ["best", "sample"])
def test_exchange_select_modes(exchange_select):
    model = lg_model()
    truth = model.simulate(20, make_rng("numpy", seed=3))
    pf = DistributedParticleFilter(model, small_cfg(exchange_select=exchange_select))
    assert np.isfinite(run_filter(pf, model, truth).errors).all()


def test_single_filter_degenerates_to_centralized_shape():
    model = lg_model()
    pf = DistributedParticleFilter(model, small_cfg(n_filters=1, topology="ring"))
    est = pf.step(np.array([0.1]))
    assert np.isfinite(est).all()


def test_kernel_timings_cover_all_phases():
    model = RobotArmModel()
    truth = model.simulate(4, make_rng("numpy", seed=4))
    pf = DistributedParticleFilter(model, small_cfg(n_particles=64))
    run = run_filter(pf, model, truth)
    for kernel in ("rand", "sampling", "sort", "estimate", "exchange", "resample"):
        assert kernel in run.kernel_seconds


def test_float32_states_dtype_stable():
    pf = DistributedParticleFilter(lg_model(), small_cfg(dtype=np.float32))
    pf.step(np.array([0.0]))
    assert pf.states.dtype == np.float32


def test_reproducible_given_seed():
    model = lg_model()
    truth = model.simulate(8, make_rng("numpy", seed=5))
    a = run_filter(DistributedParticleFilter(model, small_cfg(seed=7)), model, truth).estimates
    b = run_filter(DistributedParticleFilter(model, small_cfg(seed=7)), model, truth).estimates
    np.testing.assert_array_equal(a, b)


def test_local_estimates_and_ess():
    pf = DistributedParticleFilter(lg_model(), small_cfg())
    pf.step(np.array([0.0]))
    le = pf.local_estimates()
    assert le.shape == (16, 1)
    ess = pf.ess_per_filter()
    assert ess.shape == (16,)
    assert np.all(ess >= 1.0) and np.all(ess <= 32.0)


def test_tracks_robot_arm_lemniscate():
    model = RobotArmModel()
    pos, vel = lemniscate(60, h_s=model.params.h_s)
    truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", seed=6))
    pf = DistributedParticleFilter(
        model, DistributedFilterConfig(n_particles=64, n_filters=64, estimator="weighted_mean", seed=8)
    )
    run = run_filter(pf, model, truth)
    assert run.mean_error(warmup=20) < 0.3


def test_distributed_close_to_centralized_equal_totals():
    # Fig. 9's claim at small scale: a well-configured distributed filter
    # matches a centralized filter with the same total particle count.
    model = lg_model()
    truth = model.simulate(50, make_rng("numpy", seed=9))
    dist = DistributedParticleFilter(model, small_cfg(n_particles=64, n_filters=16, seed=10))
    cent = CentralizedParticleFilter(
        model, CentralizedFilterConfig(n_particles=1024, estimator="weighted_mean", resampler="rws", seed=10)
    )
    e_dist = run_filter(dist, model, truth).mean_error(warmup=10)
    e_cent = run_filter(cent, model, truth).mean_error(warmup=10)
    assert e_dist < 2.0 * e_cent + 0.05
