"""Tests for the estimate reduction operators."""

import numpy as np
import pytest

from repro.core import (
    global_estimate,
    local_estimates,
    max_weight_estimate,
    weighted_mean_estimate,
)


def test_max_weight_picks_global_best():
    states = np.arange(24, dtype=float).reshape(2, 4, 3)
    lw = np.full((2, 4), -10.0)
    lw[1, 2] = 0.0
    np.testing.assert_array_equal(max_weight_estimate(states, lw), states[1, 2])


def test_max_weight_is_reduction_associative():
    # Flattened reduction must equal per-filter then global reduction.
    rng = np.random.default_rng(0)
    states = rng.normal(size=(5, 7, 2))
    lw = rng.normal(size=(5, 7))
    direct = max_weight_estimate(states, lw)
    local = local_estimates(states, lw, "max_weight")
    local_w = lw.max(axis=1)
    two_round = local[np.argmax(local_w)]
    np.testing.assert_array_equal(direct, two_round)


def test_weighted_mean_uniform_weights():
    states = np.array([[0.0, 0.0], [2.0, 4.0]])[None, :, :]
    lw = np.zeros((1, 2))
    np.testing.assert_allclose(weighted_mean_estimate(states, lw), [1.0, 2.0])


def test_weighted_mean_extreme_logweights_stable():
    states = np.array([[1.0], [5.0]])
    lw = np.array([-2000.0, -1000.0])  # exp would underflow without shifting
    np.testing.assert_allclose(weighted_mean_estimate(states, lw), [5.0])


def test_weighted_mean_all_neg_inf_falls_back_to_mean():
    states = np.array([[1.0], [3.0]])
    lw = np.array([-np.inf, -np.inf])
    np.testing.assert_allclose(weighted_mean_estimate(states, lw), [2.0])


def test_local_estimates_shapes():
    states = np.random.default_rng(1).normal(size=(6, 8, 3))
    lw = np.random.default_rng(2).normal(size=(6, 8))
    for kind in ("max_weight", "weighted_mean"):
        out = local_estimates(states, lw, kind)
        assert out.shape == (6, 3)


def test_local_weighted_mean_matches_manual():
    states = np.array([[[0.0], [10.0]]])
    lw = np.log(np.array([[0.25, 0.75]]))
    np.testing.assert_allclose(local_estimates(states, lw, "weighted_mean"), [[7.5]])


def test_global_estimate_dispatch():
    states = np.array([[[1.0], [2.0]]])
    lw = np.array([[0.0, 1.0]])
    np.testing.assert_array_equal(global_estimate(states, lw, "max_weight"), [2.0])
    with pytest.raises(ValueError):
        global_estimate(states, lw, "mode")
    with pytest.raises(ValueError):
        local_estimates(states, lw, "mode")
