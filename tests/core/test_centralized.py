"""Tests for the centralized particle filter (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import CentralizedFilterConfig, CentralizedParticleFilter, run_filter
from repro.models import LinearGaussianModel, RobotArmModel, UNGMModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(
        A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]], x0_mean=[0.0], x0_cov=[[1.0]]
    )


def test_initialize_shapes():
    pf = CentralizedParticleFilter(lg_model(), CentralizedFilterConfig(n_particles=128, seed=0))
    pf.initialize()
    assert pf.states.shape == (128, 1)
    assert pf.log_weights.shape == (128,)
    assert pf.k == 0


def test_step_returns_estimate_and_advances():
    pf = CentralizedParticleFilter(lg_model(), CentralizedFilterConfig(n_particles=256, seed=0))
    est = pf.step(np.array([0.3]))
    assert est.shape == (1,)
    assert pf.k == 1


def test_tracks_linear_gaussian():
    model = lg_model()
    truth = model.simulate(60, make_rng("numpy", seed=3))
    pf = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=2000, seed=1))
    run = run_filter(pf, model, truth)
    # Measurement noise sigma = 0.1; a working PF should track well within it.
    assert run.mean_error(warmup=10) < 0.15


@pytest.mark.parametrize("resampler", ["rws", "vose", "systematic", "multinomial", "residual", "stratified"])
def test_all_resamplers_track(resampler):
    model = lg_model()
    truth = model.simulate(40, make_rng("numpy", seed=4))
    pf = CentralizedParticleFilter(
        model, CentralizedFilterConfig(n_particles=1000, resampler=resampler, seed=2)
    )
    assert run_filter(pf, model, truth).mean_error(warmup=10) < 0.2


def test_resampling_resets_weights():
    pf = CentralizedParticleFilter(lg_model(), CentralizedFilterConfig(n_particles=64, seed=0))
    pf.step(np.array([0.0]))
    assert np.all(pf.log_weights == 0.0)  # always-resample policy


def test_ess_policy_skips_resampling_and_accumulates():
    cfg = CentralizedFilterConfig(n_particles=64, resample_policy="ess", resample_arg=0.01, seed=0)
    pf = CentralizedParticleFilter(lg_model(), cfg)
    pf.step(np.array([0.0]))
    # With a tiny ESS threshold, no resampling happens -> weights accumulate.
    assert np.any(pf.log_weights != 0.0)
    assert pf.effective_sample_size() > 1.0


def test_ungm_handles_bimodal_posterior():
    model = UNGMModel()
    truth = model.simulate(50, make_rng("numpy", seed=5))
    pf = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=3000, seed=6))
    run = run_filter(pf, model, truth)
    # UNGM is hard; expect bounded but not tiny error.
    assert np.isfinite(run.errors).all()
    assert run.mean_error(warmup=10) < 10.0


def test_kernel_timings_recorded():
    model = RobotArmModel()
    truth = model.simulate(5, make_rng("numpy", seed=7))
    pf = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=256, seed=0))
    run = run_filter(pf, model, truth)
    for kernel in ("rand", "sampling", "estimate", "resample"):
        assert run.kernel_seconds.get(kernel, 0.0) > 0.0
    assert run.update_rate_hz > 0


def test_float32_pipeline():
    model = lg_model()
    pf = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=128, dtype=np.float32, seed=0))
    pf.initialize()
    assert pf.states.dtype == np.float32
    est = pf.step(np.array([0.1]))
    assert np.isfinite(est).all()


def test_reproducible_given_seed():
    model = lg_model()
    truth = model.simulate(10, make_rng("numpy", seed=8))
    runs = []
    for _ in range(2):
        pf = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=200, seed=9))
        runs.append(run_filter(pf, model, truth).estimates)
    np.testing.assert_array_equal(runs[0], runs[1])
