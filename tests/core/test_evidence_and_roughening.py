"""Tests for marginal-likelihood estimation and particle roughening."""

import numpy as np
import pytest

from repro.baselines import KalmanFilter
from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_filter,
    unique_particle_fraction,
)
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(
        A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]], x0_mean=[0.0], x0_cov=[[0.25]]
    )


class TestLogEvidence:
    def test_pf_evidence_matches_kalman_exactly_normalized(self):
        # The model's log-likelihood omits the Gaussian constant, so the PF
        # evidence differs from the exact one by k * 0.5 * logdet(2 pi R).
        model = lg_model()
        truth = model.simulate(40, make_rng("numpy", seed=0))
        kf = KalmanFilter(model)
        run_filter(kf, model, truth)
        pf = CentralizedParticleFilter(
            model, CentralizedFilterConfig(n_particles=8000, estimator="weighted_mean", seed=1)
        )
        run_filter(pf, model, truth)
        const = 0.5 * np.linalg.slogdet(2 * np.pi * model.R)[1]
        pf_evidence = pf.log_evidence - truth.n_steps * const
        # PF evidence is consistent; with 8000 particles it should be tight.
        assert pf_evidence == pytest.approx(kf.log_evidence, abs=1.0)

    def test_evidence_decreases_with_surprising_data(self):
        model = lg_model()
        pf_a = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=500, seed=2))
        pf_b = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=500, seed=2))
        for _ in range(5):
            pf_a.step(np.array([0.0]))  # plausible data
            pf_b.step(np.array([5.0]))  # wildly surprising data
        assert pf_b.log_evidence < pf_a.log_evidence - 50

    def test_evidence_resets_on_initialize(self):
        model = lg_model()
        pf = CentralizedParticleFilter(model, CentralizedFilterConfig(n_particles=100, seed=3))
        pf.step(np.array([0.3]))
        assert pf.log_evidence != 0.0
        pf.initialize()
        assert pf.log_evidence == 0.0

    def test_model_selection_picks_the_true_dynamics(self):
        # The econometrics use case: evidence comparison between candidate
        # models; the model that generated the data must win.
        true_model = lg_model()
        wrong_model = LinearGaussianModel(
            A=[[0.1]], C=[[1.0]], Q=[[0.04]], R=[[0.01]], x0_mean=[0.0], x0_cov=[[0.25]]
        )
        truth = true_model.simulate(60, make_rng("numpy", seed=4))
        evidences = {}
        for name, model in (("true", true_model), ("wrong", wrong_model)):
            pf = CentralizedParticleFilter(
                model, CentralizedFilterConfig(n_particles=2000, seed=5)
            )
            run_filter(pf, model, truth)
            evidences[name] = pf.log_evidence
        assert evidences["true"] > evidences["wrong"] + 5


class TestRoughening:
    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedFilterConfig(roughening=-0.1)

    def test_roughening_restores_diversity(self):
        model = lg_model()
        uniq = {}
        for label, k in (("off", 0.0), ("on", 0.2)):
            cfg = DistributedFilterConfig(
                n_particles=16, n_filters=8, estimator="weighted_mean", roughening=k, seed=6
            )
            pf = DistributedParticleFilter(model, cfg)
            for _ in range(5):
                pf.step(np.array([0.2]))
            uniq[label] = unique_particle_fraction(pf.states)
        assert uniq["on"] > uniq["off"]
        assert uniq["on"] > 0.95  # jitter makes (almost) everything distinct

    def test_roughening_keeps_tracking(self):
        model = lg_model()
        truth = model.simulate(40, make_rng("numpy", seed=7))
        cfg = DistributedFilterConfig(
            n_particles=16, n_filters=16, estimator="weighted_mean", roughening=0.2, seed=8
        )
        run = run_filter(DistributedParticleFilter(model, cfg), model, truth)
        assert run.mean_error(warmup=10) < 0.3

    def test_roughening_helps_impoverished_populations(self):
        # Tiny sub-filters + a peaked likelihood: resampling duplicates
        # collapse diversity; roughening should not hurt and usually helps.
        model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.0004]])
        errs = {}
        for label, k in (("off", 0.0), ("on", 0.25)):
            acc = []
            for r in range(5):
                truth = model.simulate(40, make_rng("numpy", seed=500 + r))
                cfg = DistributedFilterConfig(
                    n_particles=8, n_filters=8, estimator="weighted_mean", roughening=k, seed=r
                )
                acc.append(run_filter(DistributedParticleFilter(model, cfg), model, truth).mean_error(warmup=10))
            errs[label] = float(np.mean(acc))
        assert errs["on"] < errs["off"] * 1.2 + 0.02
