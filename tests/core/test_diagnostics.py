"""Tests for population-diversity diagnostics."""

import numpy as np
import pytest

from repro.core import (
    DistributedFilterConfig,
    DistributedParticleFilter,
    DiversityTracker,
    cross_filter_overlap,
    run_with_diagnostics,
    unique_particle_fraction,
    weight_statistics,
)
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def test_unique_fraction_all_distinct():
    states = np.arange(24.0).reshape(2, 4, 3)
    assert unique_particle_fraction(states) == 1.0


def test_unique_fraction_total_degeneracy():
    states = np.ones((2, 8, 3))
    assert unique_particle_fraction(states) == pytest.approx(1.0 / 16)


def test_unique_fraction_half():
    states = np.concatenate([np.zeros((4, 2)), np.arange(8.0).reshape(4, 2)])[None]
    # 1 zero-particle + 4 distinct = 5 unique of 8
    assert unique_particle_fraction(states) == pytest.approx(5 / 8)


def test_cross_filter_overlap_disjoint():
    states = np.arange(12.0).reshape(2, 3, 2)
    assert cross_filter_overlap(states) == 0.0


def test_cross_filter_overlap_identical():
    row = np.arange(6.0).reshape(3, 2)
    states = np.stack([row, row, row])
    assert cross_filter_overlap(states) == 1.0


def test_cross_filter_overlap_shape_validation():
    with pytest.raises(ValueError):
        cross_filter_overlap(np.zeros((4, 2)))


def test_cross_filter_overlap_single_filter():
    assert cross_filter_overlap(np.zeros((1, 4, 2))) == 0.0


def test_weight_statistics_uniform():
    stats = weight_statistics(np.zeros((2, 8)))
    assert stats["ess_fraction"] == pytest.approx(1.0)
    assert stats["max_weight_share"] == pytest.approx(1.0 / 16)


def test_weight_statistics_degenerate():
    lw = np.full(16, -1e9)
    lw[3] = 0.0
    stats = weight_statistics(lw)
    assert stats["ess_fraction"] == pytest.approx(1.0 / 16)
    assert stats["max_weight_share"] == pytest.approx(1.0)


def test_all_to_all_collapses_global_diversity():
    # The mechanism behind Fig. 6: All-to-All feeds the same best particles
    # to every sub-filter, so the *global* unique-particle fraction drops
    # below both ring exchange and isolated filters. A peaked likelihood
    # (small R) amplifies the effect, as in a well-converged filter.
    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.0004]])
    truth = model.simulate(20, make_rng("numpy", seed=0))
    uniq, overlap = {}, {}
    for scheme in ("ring", "all-to-all", "none"):
        cfg = DistributedFilterConfig(
            n_particles=16, n_filters=32, topology=scheme, n_exchange=4,
            estimator="weighted_mean", seed=1,
        )
        pf = DistributedParticleFilter(model, cfg)
        _, tracker = run_with_diagnostics(pf, model, truth)
        s = tracker.summary()
        uniq[scheme] = s["mean_unique_fraction"]
        overlap[scheme] = s["mean_overlap"]
    assert uniq["all-to-all"] < uniq["ring"]
    assert uniq["all-to-all"] < uniq["none"]
    # Any exchanging scheme shares particles across filters; isolation never.
    assert overlap["none"] == 0.0
    assert overlap["ring"] > 0.1 and overlap["all-to-all"] > 0.1


def test_run_with_diagnostics_shapes():
    model = lg_model()
    truth = model.simulate(8, make_rng("numpy", seed=2))
    cfg = DistributedFilterConfig(n_particles=8, n_filters=4, estimator="weighted_mean", seed=0)
    run, tracker = run_with_diagnostics(DistributedParticleFilter(model, cfg), model, truth)
    assert run.n_steps == 8
    assert len(tracker.unique_fraction) == 8
    assert len(tracker.overlap) == 8
    s = tracker.summary()
    assert 0.0 <= s["mean_unique_fraction"] <= 1.0
    assert 0.0 <= s["mean_overlap"] <= 1.0


def test_tracker_empty_summary():
    s = DiversityTracker().summary()
    assert s["mean_unique_fraction"] == 1.0 and s["mean_overlap"] == 0.0
