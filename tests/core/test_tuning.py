"""Tests for the codified configuration rules of thumb."""

import pytest

from repro.core import DistributedFilterConfig, expected_update_rate, recommend_config
from repro.device import get_platform


def test_gpu_budget_uses_512_subfilters():
    cfg = recommend_config(1 << 20, "gtx-580")
    assert cfg.n_particles == 512
    assert cfg.n_filters == 2048
    assert cfg.total_particles == 1 << 20


def test_cpu_budget_uses_64_per_core_class():
    cfg = recommend_config(1 << 16, "2x-e5-2650")
    assert cfg.n_particles == 64
    assert cfg.n_filters == 1024


def test_small_network_gets_ring_large_gets_torus():
    small = recommend_config(8192, "gtx-580")  # 16 sub-filters
    large = recommend_config(1 << 20, "gtx-580")  # 2048 sub-filters
    assert small.topology == "ring"
    assert large.topology == "torus"


def test_always_one_exchange_and_rws():
    cfg = recommend_config(4096)
    assert cfg.n_exchange == 1
    assert cfg.resampler == "rws"
    assert cfg.resample_policy == "always"


def test_tiny_budget_still_valid():
    cfg = recommend_config(7)
    assert isinstance(cfg, DistributedFilterConfig)
    assert cfg.total_particles >= 7
    assert cfg.n_particles >= 4


def test_budget_rounded_to_power_of_two():
    cfg = recommend_config(1000, "gtx-580")
    assert cfg.total_particles == 1024


def test_overrides_apply():
    cfg = recommend_config(4096, "gtx-580", topology="all-to-all", seed=9)
    assert cfg.topology == "all-to-all"
    assert cfg.seed == 9


def test_platform_object_accepted():
    cfg = recommend_config(4096, get_platform("hd-7970"))
    assert cfg.n_particles == 512


def test_invalid_budget():
    with pytest.raises((ValueError, TypeError)):
        recommend_config(0)


def test_expected_update_rate_is_consistent():
    cfg = recommend_config(1 << 20, "gtx-580")
    hz = expected_update_rate(cfg, "gtx-580")
    assert 100 < hz < 1000  # the paper's headline band at 1M particles


def test_recommended_beats_naive_all_to_all_in_accuracy():
    # One end-to-end check that the rules help: the recommended scheme must
    # not lose to the All-to-All anti-pattern at equal budget.
    from repro.bench.harness import sweep_error

    rec = recommend_config(512, "gtx-580", estimator="weighted_mean", n_exchange=1)
    naive = rec.with_(topology="all-to-all")
    e_rec = sweep_error(rec, n_runs=3, n_steps=50)
    e_naive = sweep_error(naive, n_runs=3, n_steps=50)
    assert e_rec < e_naive * 1.25 + 0.02
