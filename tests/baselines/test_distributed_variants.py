"""Tests for GDPF / LDPF / CDPF / RNA distributed variants."""

import numpy as np
import pytest

from repro.baselines import (
    CompressedDistributedPF,
    GlobalDistributedPF,
    LocalDistributedPF,
    RNAExchangePF,
)
from repro.core import DistributedFilterConfig, run_filter
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])


def cfg(**kw):
    base = dict(n_particles=32, n_filters=16, estimator="weighted_mean", seed=0)
    base.update(kw)
    return DistributedFilterConfig(**base)


VARIANTS = [
    lambda m: GlobalDistributedPF(m, cfg()),
    lambda m: LocalDistributedPF(m, cfg()),
    lambda m: CompressedDistributedPF(m, cfg(), compress=4),
    lambda m: RNAExchangePF(m, cfg(topology="ring", n_exchange=1)),
]


@pytest.mark.parametrize("make", VARIANTS, ids=["gdpf", "ldpf", "cdpf", "rna"])
def test_variant_tracks_linear_system(make):
    model = lg_model()
    truth = model.simulate(40, make_rng("numpy", seed=1))
    run = run_filter(make(model), model, truth)
    assert run.mean_error(warmup=10) < 0.3


def test_gdpf_mixes_population_globally():
    model = lg_model()
    pf = GlobalDistributedPF(model, cfg())
    pf.initialize()
    pf.states[:] = 100.0
    pf.states[0, 0] = 0.0  # the only good particle anywhere
    pf.step(np.array([0.0]))
    # Global resampling floods it everywhere immediately.
    assert all(np.abs(pf.states[f]).min() < 5.0 for f in range(16))


def test_ldpf_never_mixes():
    model = lg_model()
    pf = LocalDistributedPF(model, cfg())
    pf.initialize()
    pf.states[:] = 100.0
    pf.states[0, 0] = 0.0
    pf.step(np.array([0.0]))
    assert np.abs(pf.states[0]).min() < 5.0  # filter 0 keeps its good particle
    assert np.abs(pf.states[8]).min() > 5.0  # filter 8 never sees it


def test_cdpf_compression_bounds():
    model = lg_model()
    with pytest.raises(ValueError):
        CompressedDistributedPF(model, cfg(), compress=0)
    with pytest.raises(ValueError):
        CompressedDistributedPF(model, cfg(), compress=33)


def test_cdpf_population_comes_from_compressed_set():
    model = lg_model()
    pf = CompressedDistributedPF(model, cfg(), compress=2)
    pf.initialize()
    pf.step(np.array([0.0]))
    # After central compressed resampling, at most F * compress distinct
    # values exist in the whole population.
    uniq = np.unique(pf.states.round(12))
    assert uniq.size <= 16 * 2


def test_rna_exchanges_after_resample():
    model = lg_model()
    pf = RNAExchangePF(model, cfg(topology="ring", n_exchange=2, resample_policy="frequency", resample_arg=0.0))
    pf.initialize()
    tag = np.arange(16, dtype=float)[:, None, None] * 100.0
    pf.states = pf.states + tag
    pf.step(np.array([0.0]))
    # With resampling disabled, the only mixing is RNA's post-step exchange:
    # each row must contain a few particles from neighbouring tags.
    mixed_rows = 0
    for f in range(1, 15):
        vals = pf.states[f, :, 0]
        if ((vals < 90.0 * f - 45) | (vals > 90.0 * f + 45)).any():
            mixed_rows += 1
    assert mixed_rows >= 8


def test_rpa_tracks_linear_system():
    model = lg_model()
    truth = model.simulate(40, make_rng("numpy", seed=10))
    from repro.baselines import RPAProportionalPF

    run = run_filter(RPAProportionalPF(model, cfg()), model, truth)
    assert run.mean_error(warmup=10) < 0.3


def test_rpa_allocation_is_proportional():
    # A sub-filter holding all the weight receives (nearly) the whole
    # allocation; its particles dominate the redistributed population.
    from repro.baselines import RPAProportionalPF

    model = lg_model()
    pf = RPAProportionalPF(model, cfg())
    pf.initialize()
    pf.states[:] = 100.0
    pf.states[5, :] = 0.0  # every particle of filter 5 is excellent
    pf.step(np.array([0.0]))
    # After proportional allocation + redistribution, most of the global
    # population descends from filter 5's near-zero states.
    frac_good = np.mean(np.abs(pf.states) < 5.0)
    assert frac_good > 0.9


def test_rpa_population_size_preserved():
    from repro.baselines import RPAProportionalPF

    model = lg_model()
    pf = RPAProportionalPF(model, cfg())
    pf.initialize()
    pf.step(np.array([0.1]))
    assert pf.states.shape == (16, 32, 1)
    assert np.isfinite(pf.states).all()
