"""Tests for Kalman, EKF, UKF and Gaussian-PF baselines."""

import numpy as np
import pytest

from repro.baselines import (
    ExtendedKalmanFilter,
    GaussianParticleFilter,
    KalmanFilter,
    UnscentedKalmanFilter,
    numerical_jacobian,
)
from repro.core import CentralizedFilterConfig, CentralizedParticleFilter, run_filter
from repro.models import LinearGaussianModel, RobotArmModel, lemniscate, simulate_arm_tracking
from repro.prng import make_rng


def lg_model():
    return LinearGaussianModel(
        A=[[1.0, 0.1], [0.0, 0.95]],
        C=[[1.0, 0.0]],
        Q=np.diag([0.001, 0.01]),
        R=[[0.01]],
        x0_mean=[0.0, 0.5],
        x0_cov=np.eye(2) * 0.2,
    )


def test_kalman_tracks_linear_system():
    model = lg_model()
    truth = model.simulate(80, make_rng("numpy", seed=0))
    run = run_filter(KalmanFilter(model), model, truth)
    assert run.mean_error(warmup=10) < 0.2


def test_kalman_is_optimal_vs_particle_filter():
    # PF error must approach (and not beat meaningfully) the KF's.
    model = lg_model()
    truth = model.simulate(80, make_rng("numpy", seed=1))
    kf_err = run_filter(KalmanFilter(model), model, truth).mean_error(warmup=10)
    pf = CentralizedParticleFilter(
        model, CentralizedFilterConfig(n_particles=5000, estimator="weighted_mean", seed=2)
    )
    pf_err = run_filter(pf, model, truth).mean_error(warmup=10)
    assert pf_err < 1.6 * kf_err + 0.02
    assert kf_err < 1.2 * pf_err + 0.02


def test_numerical_jacobian_on_linear_fn():
    A = np.array([[1.0, 2.0], [3.0, 4.0]])
    J = numerical_jacobian(lambda x: A @ x, np.array([0.3, -0.7]))
    np.testing.assert_allclose(J, A, atol=1e-6)


def test_numerical_jacobian_on_nonlinear_fn():
    J = numerical_jacobian(lambda x: np.array([np.sin(x[0]) * x[1]]), np.array([0.5, 2.0]))
    np.testing.assert_allclose(J, [[2.0 * np.cos(0.5), np.sin(0.5)]], atol=1e-6)


def test_ekf_matches_kalman_on_linear_model():
    model = lg_model()
    truth = model.simulate(40, make_rng("numpy", seed=3))
    ekf = ExtendedKalmanFilter(
        f=lambda x, u, k: model.A @ x,
        h=lambda x: model.C @ x,
        Q=model.Q,
        R=model.R,
        x0_mean=model.x0_mean,
        x0_cov=model.x0_cov,
    )
    kf_run = run_filter(KalmanFilter(model), model, truth)
    ekf_run = run_filter(ekf, model, truth)
    np.testing.assert_allclose(ekf_run.estimates, kf_run.estimates, atol=1e-4)


def test_ukf_matches_kalman_on_linear_model():
    model = lg_model()
    truth = model.simulate(40, make_rng("numpy", seed=4))
    ukf = UnscentedKalmanFilter(
        f=lambda x, u, k: model.A @ x,
        h=lambda x: model.C @ x,
        Q=model.Q,
        R=model.R,
        x0_mean=model.x0_mean,
        x0_cov=model.x0_cov,
    )
    kf_run = run_filter(KalmanFilter(model), model, truth)
    ukf_run = run_filter(ukf, model, truth)
    np.testing.assert_allclose(ukf_run.estimates, kf_run.estimates, atol=1e-3)


@pytest.mark.parametrize("cls", [ExtendedKalmanFilter, UnscentedKalmanFilter])
def test_parametric_filters_run_on_robot_arm(cls):
    model = RobotArmModel()
    pos, vel = lemniscate(40, h_s=model.params.h_s)
    truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", seed=5))
    flt = cls.for_robot_arm(model)
    run = run_filter(flt, model, truth)
    assert np.isfinite(run.errors).all()
    # Angles are nearly linear-Gaussian, so these should at least not diverge.
    assert run.mean_error(warmup=10) < 2.0


def test_gaussian_pf_tracks_linear_system():
    model = lg_model()
    truth = model.simulate(60, make_rng("numpy", seed=6))
    gpf = GaussianParticleFilter(model, n_particles=2000, seed=7)
    run = run_filter(gpf, model, truth)
    # Full-state error includes the indirectly observed velocity component.
    assert run.mean_error(warmup=10) < 0.3


def test_gaussian_pf_close_to_kalman_on_gaussian_problem():
    # Related work [12]: GPF is "equally accurate for (near-)Gaussian problems".
    model = lg_model()
    truth = model.simulate(60, make_rng("numpy", seed=8))
    kf_err = run_filter(KalmanFilter(model), model, truth).mean_error(warmup=10)
    gpf_err = run_filter(GaussianParticleFilter(model, 4000, seed=9), model, truth).mean_error(warmup=10)
    assert gpf_err < 1.6 * kf_err + 0.02


def test_gaussian_pf_validation():
    with pytest.raises((ValueError, TypeError)):
        GaussianParticleFilter(lg_model(), n_particles=0)
