"""Tests for the command-line interface and config serialization."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.parameters import (
    CentralizedFilterConfig,
    DistributedFilterConfig,
    centralized_config_from_dict,
    centralized_config_to_dict,
    distributed_config_from_dict,
    distributed_config_to_dict,
)
from repro.topology import RingTopology


class TestConfigSerialization:
    def test_distributed_roundtrip(self):
        cfg = DistributedFilterConfig(n_particles=8, n_filters=4, topology="torus", n_exchange=2, dtype=np.float64)
        d = distributed_config_to_dict(cfg)
        json.dumps(d)  # must be JSON-clean
        back = distributed_config_from_dict(d)
        assert back == cfg.with_()  # frozen dataclass equality
        assert np.dtype(back.dtype) == np.float64

    def test_centralized_roundtrip(self):
        cfg = CentralizedFilterConfig(n_particles=100, resampler="rws")
        back = centralized_config_from_dict(json.loads(json.dumps(centralized_config_to_dict(cfg))))
        assert back == cfg

    def test_custom_topology_not_serializable(self):
        cfg = DistributedFilterConfig(n_particles=8, n_filters=4, topology=RingTopology(4))
        with pytest.raises(TypeError):
            distributed_config_to_dict(cfg)


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_track_command(self, capsys):
        rc = main(["track", "--particles", "8", "--filters", "8", "--steps", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "error_m" in out and "host_hz" in out

    def test_bench_tables(self, capsys):
        rc = main(["bench", "tables"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "GTX 580" in out

    def test_bench_fig4(self, capsys):
        rc = main(["bench", "fig4"])
        assert rc == 0
        assert "Fig 4a" in capsys.readouterr().out

    def test_platforms_command(self, capsys):
        rc = main(["platforms"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "embedded" in out

    def test_kernels_command(self, capsys):
        rc = main(["kernels", "--platform", "hd-7970", "--particles", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered kernels" in out and "HD 7970" in out
        for name in ("sort", "rws", "metropolis", "route_pooled"):
            assert name in out

    def test_kernels_rejects_unknown_platform(self, capsys):
        # A clean diagnostic and exit code, not a ValueError traceback.
        rc = main(["kernels", "--platform", "not-a-device"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown platform 'not-a-device'" in err
        assert "gtx-580" in err  # the message lists the valid choices

    def test_bench_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])

    @pytest.mark.parametrize("figure", ["multiprocess", "kernels", "sessions"])
    def test_bench_rejects_unknown_grid(self, figure, capsys):
        # A clean diagnostic and exit code, not a KeyError traceback.
        rc = main(["bench", figure, "--grid", "not-a-grid"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown grid 'not-a-grid'" in err
        assert "smoke" in err  # the message lists the valid choices

    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        # Patch the heavy runners for a fast structural check of the report.
        import repro.bench.report as report

        monkeypatch.setattr(report, "run_fig3", lambda **kw: [{"total_particles": 1, "gtx-580": 1.0}])
        monkeypatch.setattr(report, "run_fig4a", lambda: [{"particles_per_subfilter": 16, "sort": 0.2}])
        monkeypatch.setattr(report, "run_fig4b", lambda: [{"n_subfilters": 16, "sort": 0.2}])
        monkeypatch.setattr(report, "run_fig4c", lambda: [{"state_dim": 8, "sampling": 0.4}])
        monkeypatch.setattr(report, "measured_breakdown", lambda: {"sampling": 1.0})
        monkeypatch.setattr(report, "run_fig5_centralized", lambda: [{"n_particles": 4, "rws_measured_ms": 1.0}])
        monkeypatch.setattr(report, "run_fig5_subfilter", lambda: [{"total_particles": 4, "rws_measured_ms": 1.0}])
        monkeypatch.setattr(report, "run_fig6", lambda n_runs: [{"particles_per_filter": 8, "ring": 0.2}])
        monkeypatch.setattr(report, "run_fig7", lambda n_runs: [{"particles_per_filter": 8, "t=1": 0.2}])
        monkeypatch.setattr(
            report,
            "run_fig8",
            lambda: {
                "high_converged_at": 5,
                "low_converged_at": None,
                "high_errors": np.ones(30) * 0.1,
                "low_errors": np.ones(30) * 9.9,
            },
        )
        monkeypatch.setattr(report, "run_fig9", lambda n_runs: [{"total_particles": 256, "centralized": 0.2}])
        out_file = tmp_path / "report.md"
        rc = main(["report", "-o", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        for heading in ("Fig 3", "Fig 4a", "Fig 5", "Fig 6", "Fig 7", "Fig 8", "Fig 9", "Table II", "Table III"):
            assert heading in text


class TestBenchMultiprocessCLI:
    @staticmethod
    def fake_report(speedup=2.0, parity=True):
        return {
            "benchmark": "multiprocess-transport", "grid": "smoke",
            "rows": [{
                "n_filters": 16, "m": 16, "n_workers": 2, "total_particles": 256,
                "vectorized_steps_per_s": 100.0, "pipe_steps_per_s": 10.0,
                "shm_steps_per_s": 10.0 * speedup,
                "identical_estimates": parity, "shm_speedup_vs_pipe": speedup,
            }],
            "summary": {
                "largest_config": {"n_filters": 16, "m": 16, "n_workers": 2},
                "shm_speedup_vs_pipe": speedup, "identical_estimates": parity,
            },
        }

    def patch(self, monkeypatch, **kw):
        import repro.bench.perf as perf

        monkeypatch.setattr(perf, "run_multiprocess_bench",
                            lambda **kwargs: self.fake_report(**kw))

    def test_writes_report_and_asserts_speedup(self, tmp_path, capsys, monkeypatch):
        self.patch(monkeypatch, speedup=1.8)
        out_path = tmp_path / "bench.json"
        rc = main(["bench", "multiprocess", "--grid", "smoke",
                   "-o", str(out_path), "--assert-speedup", "1.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shm/pipe 1.80x" in out and "parity=ok" in out
        assert json.loads(out_path.read_text())["summary"]["shm_speedup_vs_pipe"] == 1.8

    def test_fails_below_required_speedup(self, capsys, monkeypatch):
        self.patch(monkeypatch, speedup=1.1)
        rc = main(["bench", "multiprocess", "--assert-speedup", "1.5"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().err

    def test_fails_on_parity_mismatch(self, capsys, monkeypatch):
        self.patch(monkeypatch, parity=False)
        rc = main(["bench", "multiprocess"])
        assert rc == 1
        assert "disagreed" in capsys.readouterr().err


class TestBenchSessionsCLI:
    def fake_report(self, speedup=6.0):
        row = {
            "sessions": 64, "m": 32, "execution": "reference",
            "total_particles": 2048,
            "naive_steps_per_s": 4000.0,
            "cohort_steps_per_s": 4000.0 * speedup,
            "speedup": speedup,
            "latency_p50_s": 0.001, "latency_p99_s": 0.002,
            "parity_sessions": 8, "parity_ok": True,
        }
        return {
            "benchmark": "sessions", "grid": "smoke", "steps": 25, "warmup": 3,
            "metadata": {}, "rows": [row],
            "summary": {
                "best_speedup": speedup,
                "best_config": {"sessions": 64, "m": 32,
                                "execution": "reference"},
                "largest_sessions": 64, "largest_speedup": speedup,
            },
        }

    def patch(self, monkeypatch, **kw):
        import repro.bench.sessions as sessions

        monkeypatch.setattr(sessions, "run_sessions_bench",
                            lambda **kwargs: self.fake_report(**kw))

    def test_writes_report_and_asserts_speedup(self, tmp_path, capsys, monkeypatch):
        self.patch(monkeypatch, speedup=6.0)
        out_path = tmp_path / "sessions.json"
        rc = main(["bench", "sessions", "--grid", "smoke",
                   "-o", str(out_path), "--assert-speedup", "5.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup   6.00x" in out and "parity=ok" in out
        assert json.loads(out_path.read_text())["summary"]["largest_speedup"] == 6.0

    def test_fails_below_required_speedup(self, capsys, monkeypatch):
        self.patch(monkeypatch, speedup=1.2)
        rc = main(["bench", "sessions", "--assert-speedup", "5.0"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().err


class TestRunCLI:
    def test_checkpoint_then_resume_matches_uninterrupted(self, tmp_path, capsys):
        # golden-trace smoke at the CLI surface: final estimate of the
        # resumed run must be printed identically to the uninterrupted one.
        rc = main(["run", "--steps", "12", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out.strip().splitlines()[-1]
        golden = out.split("final estimate")[-1]

        ckpt = str(tmp_path / "run.ckpt")
        rc = main(["run", "--steps", "6", "--seed", "7", "--checkpoint", ckpt])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote checkpoint" in out and "steps 0..5" in out

        rc = main(["run", "--steps", "12", "--seed", "7", "--resume", ckpt])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed" in out and "at step 6" in out and "steps 6..11" in out
        assert out.strip().splitlines()[-1].split("final estimate")[-1] == golden

    def test_multiprocess_backend_roundtrip(self, tmp_path, capsys):
        ckpt = str(tmp_path / "mp.ckpt")
        rc = main(["run", "--backend", "pipe", "--steps", "4", "--checkpoint", ckpt])
        assert rc == 0
        capsys.readouterr()
        rc = main(["run", "--backend", "pipe", "--steps", "8", "--resume", ckpt])
        assert rc == 0
        assert "steps 4..7" in capsys.readouterr().out


class TestChaosCLI:
    def test_soak_prints_report_and_exports_json(self, tmp_path, capsys):
        out_path = tmp_path / "chaos.json"
        rc = main(["chaos", "--steps", "6", "--seed", "5", "--max-kills", "1",
                   "--respawn", "-o", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault plan (seed=5)" in out
        assert "n_failures" in out and "escalations" in out
        payload = json.loads(out_path.read_text())
        assert payload["seed"] == 5 and payload["transport"] == "pipe"
        assert set(payload) >= {"plan", "report", "events", "supervisor",
                                "dead_workers"}
        assert payload["supervisor"]["max_missed"] >= 1
        # the exported plan replays: it is the reproducibility contract
        from repro.resilience import FaultPlan

        clone = FaultPlan.from_dicts(payload["plan"])
        assert clone.seed == 5

    def test_clean_plan_soak(self, capsys):
        # p=0 probabilities: a chaos soak with no faults still reports
        rc = main(["chaos", "--steps", "3", "--p-kill", "0", "--p-poison", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clean" in out and "n_failures" in out


class TestTraceCLI:
    def test_trace_writes_valid_trace_event_json(self, tmp_path, capsys):
        # The CLI smoke contract: the output opens in Perfetto, i.e. every
        # event carries ph/ts/pid/tid/name (and X events carry dur).
        from repro.telemetry import validate_trace_events

        out_path = tmp_path / "trace.json"
        rc = main(["trace", str(out_path), "--backend", "vectorized",
                   "--filters", "4", "--particles", "16", "--steps", "3"])
        assert rc == 0
        events = validate_trace_events(json.loads(out_path.read_text()))
        assert any(ev.get("cat") == "step" for ev in events)
        assert any(ev.get("cat") == "kernel" for ev in events)
        out = capsys.readouterr().out
        assert "per-stage breakdown" in out and "wrote" in out

    def test_trace_multiprocess_merges_workers(self, tmp_path):
        from repro.telemetry import validate_trace_events

        out_path = tmp_path / "trace.json"
        rc = main(["trace", str(out_path), "--backend", "shm",
                   "--filters", "4", "--particles", "16",
                   "--workers", "2", "--steps", "2"])
        assert rc == 0
        events = validate_trace_events(json.loads(out_path.read_text()))
        names = {ev["args"]["name"] for ev in events if ev["ph"] == "M"}
        assert {"master", "worker-0", "worker-1"} <= names
        # run-level span stamped with provenance metadata
        run_ev = next(ev for ev in events if ev.get("cat") == "run")
        assert "python" in run_ev["args"]
