"""API-stability tests for the per-figure bench runners (tiny parameters)."""

import pytest

from repro.bench import (
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig4c,
    run_fig5_centralized,
    run_fig5_subfilter,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    table2_rows,
    table3_rows,
)
from repro.metrics.timing import KERNELS


def test_fig3_rows_have_all_platforms():
    rows = run_fig3(totals=[1024, 4096], measure_host=False)
    assert len(rows) == 2
    for r in rows:
        for p in ("i7-2820qm", "gtx-580", "hd-7970", "seq_centralized"):
            assert r[p] > 0


def test_fig3_host_measurement_included_for_small_totals():
    rows = run_fig3(totals=[1024], measure_host=True)
    assert rows[0]["host_numpy_measured"] > 0


@pytest.mark.parametrize("runner,label", [(run_fig4a, "particles_per_subfilter"), (run_fig4b, "n_subfilters"), (run_fig4c, "state_dim")])
def test_fig4_rows_are_normalized_breakdowns(runner, label):
    rows = runner()
    for r in rows:
        assert label in r
        total = sum(r[k] for k in KERNELS)
        assert total == pytest.approx(1.0, abs=1e-6)
        assert r["total_ms"] > 0


def test_fig5_runners_shapes():
    central = run_fig5_centralized(sizes=[1024, 4096])
    sub = run_fig5_subfilter(totals=[8192])
    assert {r["n_particles"] for r in central} == {1024, 4096}
    for r in central + sub:
        for k in r:
            if k.endswith("_ms"):
                assert r[k] > 0


def test_fig6_fig7_row_structure():
    r6 = run_fig6(schemes=("ring",), particles_per_filter=(8,), n_filters=(4,), n_runs=1, n_steps=30)
    assert r6 == [dict(particles_per_filter=8, n_filters=4, ring=pytest.approx(r6[0]["ring"]))]
    r7 = run_fig7(t_values=(0, 1), particles_per_filter=(8,), n_filters=(4,), n_runs=1, n_steps=30)
    assert set(r7[0]) == {"particles_per_filter", "n_filters", "t=0", "t=1"}


def test_fig8_structure():
    out = run_fig8(n_steps=40, high=(16, 16), low=(2, 2))
    assert out["ground_truth"].shape == (40, 2)
    assert out["high_trace"].shape == (40, 2)
    assert out["low_errors"].shape == (40,)


def test_fig9_skips_impossible_cells():
    rows = run_fig9(totals=(64,), subfilter_sizes=(4, 64), n_runs=1, n_steps=30)
    # total=64 with m=64 -> N=1 < 2 sub-filters: cell must be skipped.
    assert "distributed_m=64" not in rows[0]
    assert "distributed_m=4" in rows[0]


def test_table_runners():
    assert len(table2_rows()) == 13
    assert len(table3_rows()) == 6
