"""Tests for the benchmark harness utilities."""

import numpy as np

from repro.bench import format_table
from repro.bench.harness import arm_truth, sweep_error
from repro.core import DistributedFilterConfig


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_floats(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 10.0}]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out  # 4 significant digits

    def test_heterogeneous_keys(self):
        rows = [{"a": 1}, {"a": 2, "b": 3.0}]
        out = format_table(rows)
        assert "b" in out.splitlines()[0]
        assert "-" in out.splitlines()[2]  # missing cell marker

    def test_non_numeric_cells(self):
        out = format_table([{"scheme": "ring", "n": 4}])
        assert "ring" in out


def test_arm_truth_deterministic():
    a = arm_truth(10, seed=5)
    b = arm_truth(10, seed=5)
    np.testing.assert_array_equal(a.measurements, b.measurements)
    assert a.n_steps == 10


def test_sweep_error_returns_scalar():
    cfg = DistributedFilterConfig(n_particles=8, n_filters=8, estimator="weighted_mean")
    err = sweep_error(cfg, n_runs=1, n_steps=25, warmup=8)
    assert isinstance(err, float)
    assert 0 < err < 5
