"""Tests for the transport throughput benchmark harness."""

import json

import numpy as np

from repro.bench.perf import (
    GRIDS,
    PayloadBenchModel,
    run_multiprocess_bench,
    write_report,
)
from repro.prng import make_rng

TINY = [(8, 8, 2)]


def test_grids_cover_the_acceptance_config():
    for name in ("default", "full"):
        n_filters, m, n_workers = GRIDS[name][-1]
        assert n_filters >= 256 and m >= 64 and n_workers >= 4


def test_payload_model_shapes_and_determinism():
    model = PayloadBenchModel(d=16)
    rng = make_rng("numpy", seed=0)
    parts = model.initial_particles(12, rng, dtype=np.float32)
    assert parts.shape == (12, 16) and parts.dtype == np.float32
    nxt = model.transition(parts, None, 0, make_rng("numpy", seed=1))
    again = model.transition(parts, None, 0, make_rng("numpy", seed=1))
    np.testing.assert_array_equal(nxt, again)
    assert nxt.dtype == np.float32
    # Only coordinate 0 is stochastic; the rest is a pure contraction.
    np.testing.assert_array_equal(nxt[:, 1:], (0.95 * parts[:, 1:]).astype(np.float32))
    ll = model.log_likelihood(parts.reshape(3, 4, 16), np.array([0.1]), 0)
    assert ll.shape == (3, 4)
    truth = model.simulate(5, make_rng("numpy", seed=2))
    assert truth.measurements.shape == (5, 1)


def test_report_structure_and_parity_on_tiny_grid(tmp_path):
    report = run_multiprocess_bench(TINY, steps=4, warmup=1, state_dim=4)
    assert report["grid"] == "custom"
    assert len(report["rows"]) == 1
    row = report["rows"][0]
    for backend in ("vectorized", "pipe", "shm"):
        assert row[f"{backend}_steps_per_s"] > 0
        assert row[f"{backend}_particles_per_s"] > 0
    assert row["identical_estimates"] is True
    assert row["shm_speedup_vs_pipe"] > 0
    assert report["summary"]["identical_estimates"] is True
    assert report["summary"]["largest_config"]["n_filters"] == 8

    path = write_report(report, str(tmp_path / "bench.json"))
    with open(path) as fh:
        assert json.load(fh)["benchmark"] == "multiprocess-transport"


def test_backend_subset_skips_parity():
    report = run_multiprocess_bench(TINY, steps=3, warmup=1,
                                    backends=("vectorized",), state_dim=4)
    row = report["rows"][0]
    assert "identical_estimates" not in row
    assert report["summary"]["identical_estimates"] is True  # vacuous
    assert report["summary"]["shm_speedup_vs_pipe"] is None


def test_report_carries_run_metadata():
    report = run_multiprocess_bench(TINY, steps=2, warmup=1,
                                    backends=("vectorized",), state_dim=4)
    meta = report["metadata"]
    assert set(meta) == {"git_sha", "python", "numpy", "platform",
                         "machine", "cpu_count"}
    assert meta["python"] and meta["numpy"]
    json.dumps(meta)  # must be JSON-clean even with None fields


def test_trace_path_writes_merged_chrome_trace(tmp_path):
    from repro.telemetry import validate_trace_events

    path = tmp_path / "bench_trace.json"
    run_multiprocess_bench(TINY, steps=2, warmup=1, state_dim=4,
                           trace_path=str(path))
    events = validate_trace_events(json.load(open(path)))
    cats = {ev.get("cat") for ev in events}
    assert {"run", "step", "stage", "kernel"} <= cats
    # One run span per (config, backend) pair.
    runs = [ev for ev in events if ev.get("cat") == "run"]
    assert len(runs) == 3  # vectorized + pipe + shm on the tiny grid
    # Worker tracks from the multiprocess backends are merged in.
    labels = {ev["args"]["name"] for ev in events if ev["ph"] == "M"}
    assert any(name.startswith("pipe:worker") for name in labels)
    assert any(name.startswith("shm:worker") for name in labels)


def test_measure_telemetry_overhead_structure():
    from repro.bench.perf import measure_telemetry_overhead

    out = measure_telemetry_overhead(n_filters=8, m=8, steps=3, warmup=1,
                                     repeats=1, state_dim=4)
    assert out["baseline_s_per_step"] > 0
    assert out["instrumented_s_per_step"] > 0
    # Sanity only: the <5% assertion runs at bench scale in CI, where the
    # timed region is long enough for the ratio to be stable.
    assert out["overhead_fraction"] > -0.9
