"""Tests for the transport throughput benchmark harness."""

import json

import numpy as np

from repro.bench.perf import (
    GRIDS,
    PayloadBenchModel,
    run_multiprocess_bench,
    write_report,
)
from repro.prng import make_rng

TINY = [(8, 8, 2)]


def test_grids_cover_the_acceptance_config():
    for name in ("default", "full"):
        n_filters, m, n_workers = GRIDS[name][-1]
        assert n_filters >= 256 and m >= 64 and n_workers >= 4


def test_payload_model_shapes_and_determinism():
    model = PayloadBenchModel(d=16)
    rng = make_rng("numpy", seed=0)
    parts = model.initial_particles(12, rng, dtype=np.float32)
    assert parts.shape == (12, 16) and parts.dtype == np.float32
    nxt = model.transition(parts, None, 0, make_rng("numpy", seed=1))
    again = model.transition(parts, None, 0, make_rng("numpy", seed=1))
    np.testing.assert_array_equal(nxt, again)
    assert nxt.dtype == np.float32
    # Only coordinate 0 is stochastic; the rest is a pure contraction.
    np.testing.assert_array_equal(nxt[:, 1:], (0.95 * parts[:, 1:]).astype(np.float32))
    ll = model.log_likelihood(parts.reshape(3, 4, 16), np.array([0.1]), 0)
    assert ll.shape == (3, 4)
    truth = model.simulate(5, make_rng("numpy", seed=2))
    assert truth.measurements.shape == (5, 1)


def test_report_structure_and_parity_on_tiny_grid(tmp_path):
    report = run_multiprocess_bench(TINY, steps=4, warmup=1, state_dim=4)
    assert report["grid"] == "custom"
    assert len(report["rows"]) == 1
    row = report["rows"][0]
    for backend in ("vectorized", "pipe", "shm"):
        assert row[f"{backend}_steps_per_s"] > 0
        assert row[f"{backend}_particles_per_s"] > 0
    assert row["identical_estimates"] is True
    assert row["shm_speedup_vs_pipe"] > 0
    assert report["summary"]["identical_estimates"] is True
    assert report["summary"]["largest_config"]["n_filters"] == 8

    path = write_report(report, str(tmp_path / "bench.json"))
    with open(path) as fh:
        assert json.load(fh)["benchmark"] == "multiprocess-transport"


def test_backend_subset_skips_parity():
    report = run_multiprocess_bench(TINY, steps=3, warmup=1,
                                    backends=("vectorized",), state_dim=4)
    row = report["rows"][0]
    assert "identical_estimates" not in row
    assert report["summary"]["identical_estimates"] is True  # vacuous
    assert report["summary"]["shm_speedup_vs_pipe"] is None
