"""Tests for the `esthera bench kernels` A/B harness (fast settings only —
the committed BENCH_kernels.json numbers come from the default grid)."""

import json

import numpy as np

from repro.bench.kernels import (
    FLOAT32_RMSE_BUDGET,
    GRIDS,
    KernelBenchModel,
    run_kernel_bench,
    write_report,
)


def tiny_report():
    return run_kernel_bench(grid="smoke", steps=12, warmup=2, repeats=1)


class TestModel:
    def test_bench_model_simulates_and_weights(self):
        from repro.prng.streams import make_rng

        model = KernelBenchModel()
        truth = model.simulate(5, rng=make_rng("philox", 1))
        assert truth.measurements.shape == (5, 1)
        lw = model.log_likelihood(np.zeros((3, 4, 1)), truth.measurements[0], 0)
        assert lw.shape == (3, 4)
        assert np.all(np.isfinite(lw))


class TestReport:
    def test_report_structure_and_parity(self, tmp_path):
        report = tiny_report()
        assert report["benchmark"] == "kernel-forms"
        assert report["grid"] == "smoke"
        assert len(report["rows"]) == len(GRIDS["smoke"])
        for row in report["rows"]:
            assert row["compiled_mixed_bit_identical"] is True
            assert row["compiled_float32_steps_per_s"] > 0
            assert row["reference_float64_steps_per_s"] > 0
            assert row["speedup"] > 0
            assert row["compiled_float32_rmse"] <= (
                row["reference_float64_rmse"] * FLOAT32_RMSE_BUDGET + 0.05)
        summary = report["summary"]
        assert summary["bit_identical"] is True
        assert summary["float32_rmse_within_budget"] is True
        assert summary["best_speedup"] == max(r["speedup"] for r in report["rows"])
        # Per-kernel A/B rows cover every kernel with a compiled form + adapter.
        assert any(k["kernel"] == "logsumexp" for k in report["kernels"])

    def test_write_report_round_trips(self, tmp_path):
        report = tiny_report()
        path = tmp_path / "BENCH_kernels.json"
        write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["summary"]["bit_identical"] is True

    def test_fused_pipeline_actually_engaged(self):
        report = tiny_report()
        for row in report["rows"]:
            assert row["compiled_float32_fused"] is True
            assert row["compiled_mixed_fused"] is True
