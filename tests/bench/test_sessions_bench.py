"""Tests for the session-layer throughput benchmark."""

import json

import numpy as np
import pytest

from repro.bench.harness import resolve_grid
from repro.bench.sessions import (
    GRIDS,
    SessionBenchModel,
    run_sessions_bench,
    write_report,
)
from repro.prng import make_rng


class TestResolveGrid:
    def test_named_grid(self):
        assert resolve_grid(GRIDS, "smoke") == GRIDS["smoke"]

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match=r"unknown grid 'xl'.*default.*full.*smoke"):
            resolve_grid(GRIDS, "xl")

    def test_explicit_list_passes_through_as_tuples(self):
        assert resolve_grid(GRIDS, [[4, 8], (2, 2)]) == [(4, 8), (2, 2)]


class TestSessionBenchModel:
    def test_cohort_broadcast_matches_per_session_likelihood(self):
        # The (rows, 1, 1) packed measurement must evaluate elementwise
        # identically to each session's scalar measurement.
        model = SessionBenchModel()
        rng = make_rng("numpy", seed=0)
        states = rng.normal((4, 2, 1))
        meas = rng.normal((4, 1))
        batched = model.log_likelihood(states, meas[:, None, :], k=0)
        for i in range(4):
            np.testing.assert_array_equal(
                batched[i], model.log_likelihood(states[i], meas[i], k=0))

    def test_simulate_roundtrip(self):
        truth = SessionBenchModel().simulate(5, make_rng("numpy", seed=1))
        assert truth.measurements.shape == (5, 1)


class TestRunSessionsBench:
    def test_report_structure_and_parity(self):
        report = run_sessions_bench(grid=[3], steps=2, warmup=1)
        assert [r["sessions"] for r in report["rows"]] == [3, 3]
        for row in report["rows"]:
            assert row["parity_ok"]
            assert row["naive_steps_per_s"] > 0
            assert row["cohort_steps_per_s"] > 0
            assert row["latency_p99_s"] >= row["latency_p50_s"] >= 0
        summary = report["summary"]
        assert summary["largest_sessions"] == 3
        assert summary["largest_speedup"] == max(
            r["speedup"] for r in report["rows"])
        assert summary["best_config"]["sessions"] == 3

    def test_write_report_roundtrip(self, tmp_path):
        report = run_sessions_bench(grid=[2], steps=1, warmup=0)
        path = write_report(report, str(tmp_path / "BENCH_sessions.json"))
        with open(path) as fh:
            back = json.load(fh)
        assert back["benchmark"] == "sessions"
        assert back["rows"] == report["rows"]
