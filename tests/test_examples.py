"""Smoke tests: the runnable examples must actually run.

Each example is executed in-process (runpy) with its ``main()`` patched-free
small configuration where needed; only the faster examples are exercised to
keep the suite quick — the long sweep study is covered by the benchmarks.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "platform_projection.py",
    "simt_kernel_playground.py",
    "bearings_only_tracking.py",
    "custom_model_tutorial.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # it printed its report


def test_quickstart_reports_error_and_rate(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "object-pos error" in out
    assert "update rate" in out


def test_all_examples_importable():
    # Every example must at least parse and import (main() not called).
    for f in sorted(EXAMPLES.glob("*.py")):
        runpy.run_path(str(f), run_name="not_main")
