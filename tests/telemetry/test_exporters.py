"""Tests for the telemetry exporters: Chrome trace, JSONL, summary table."""

import json

import pytest

from repro.telemetry import (
    TRACE_EVENT_REQUIRED_KEYS,
    ChromeTraceExporter,
    JsonlExporter,
    Span,
    breakdown,
    chrome_trace,
    jsonl_events,
    summary_table,
    validate_trace_events,
    write_chrome_trace,
)


def sample_spans():
    return [
        Span("step 0", "step", 10.0, 10.5, pid=1, tid=0),
        Span("sampling", "stage", 10.0, 10.2, pid=1, tid=0),
        Span("sort", "kernel", 10.05, 10.1, pid=1, tid=0,
             attrs={"flops": 640, "obj": object()}),
        Span("resample", "stage", 10.3, 10.5, pid=2, tid=0),
    ]


class TestChromeTrace:
    def test_schema_and_required_keys(self):
        obj = chrome_trace(sample_spans(), {"heal.sanitized": 3},
                           labels={1: "master", 2: "worker-0"})
        events = validate_trace_events(obj)
        assert obj["displayTimeUnit"] == "ms"
        for ev in events:
            for key in TRACE_EVENT_REQUIRED_KEYS:
                assert key in ev
        phases = {ev["ph"] for ev in events}
        assert phases == {"M", "X", "i"}
        json.dumps(obj)  # attrs must be JSON-clean (the object() is repr'd)

    def test_timestamps_rebased_to_zero_in_us(self):
        events = chrome_trace(sample_spans())["traceEvents"]
        xs = [ev for ev in events if ev["ph"] == "X"]
        assert min(ev["ts"] for ev in xs) == 0.0
        first = next(ev for ev in xs if ev["name"] == "step 0")
        assert first["dur"] == pytest.approx(0.5e6)

    def test_process_labels_become_metadata_events(self):
        events = chrome_trace(sample_spans(), labels={2: "worker-0"})["traceEvents"]
        meta = [ev for ev in events if ev["ph"] == "M"]
        assert meta == [{"ph": "M", "ts": 0, "pid": 2, "tid": 0,
                         "name": "process_name", "args": {"name": "worker-0"}}]

    def test_validate_rejects_bad_objects(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace_events({"events": []})
        with pytest.raises(ValueError, match="non-empty"):
            validate_trace_events({"traceEvents": []})
        with pytest.raises(ValueError, match="missing required key"):
            validate_trace_events({"traceEvents": [{"ph": "X", "ts": 0}]})
        with pytest.raises(ValueError, match="'dur'"):
            validate_trace_events({"traceEvents": [
                {"ph": "X", "ts": 0, "pid": 1, "tid": 0, "name": "a"}]})

    def test_write_and_exporter_class(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, sample_spans(), {"c": 1})
        validate_trace_events(json.load(open(path)))
        ChromeTraceExporter(path).export(sample_spans(), {"c": 2}, labels={1: "m"})
        validate_trace_events(json.load(open(path)))


class TestJsonl:
    def test_rows_cover_spans_and_counters(self):
        rows = jsonl_events(sample_spans(), {"faults.injected": 2})
        kinds = [r["type"] for r in rows]
        assert kinds.count("span") == 4 and kinds.count("counter") == 1
        assert rows[-1] == {"type": "counter", "name": "faults.injected",
                            "value": 2}

    def test_exporter_appends_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        exp = JsonlExporter(path)
        exp.export(sample_spans()[:2], {})
        exp.export(sample_spans()[2:], {"c": 1})
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == 5  # 2 + 2 spans + 1 counter, appended


class TestSummary:
    def test_breakdown_sums_by_kind(self):
        agg = breakdown(sample_spans(), "stage")
        assert agg["sampling"] == pytest.approx(0.2)
        assert agg["resample"] == pytest.approx(0.2)
        assert "sort" not in agg  # kernel, not stage

    def test_table_has_fractions_and_counters(self):
        text = summary_table(sample_spans(), {"transport_fallbacks": 4})
        assert "per-stage breakdown" in text
        assert "per-kernel breakdown" in text
        assert "sampling" in text and "50.0%" in text
        assert "transport_fallbacks" in text and "4" in text

    def test_empty_spans(self):
        assert summary_table([], {}) == "(no spans recorded)"
