"""Tests for the telemetry spine: spans, counters, wire format, warn-once."""

import warnings

import pytest

from repro.telemetry import (
    Span,
    Tracer,
    reset_hook_error_warnings,
    run_metadata,
    spans_from_wire,
    spans_to_wire,
    warn_hook_error_once,
)


class FakeClock:
    """Deterministic clock: each call advances by one tick."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def make_tracer(enabled=True):
    return Tracer(clock=FakeClock(), enabled=enabled, pid=7, tid=0)


class TestSpanStack:
    def test_begin_end_records_interval(self):
        tr = make_tracer()
        tr.begin("step 0", "step", k=0)
        tr.begin("sampling", "stage")
        inner = tr.end()
        outer = tr.end()
        assert inner.name == "sampling" and inner.kind == "stage"
        assert outer.name == "step 0" and outer.attrs == {"k": 0}
        # Nesting: the inner span closes first and sits inside the outer.
        assert outer.start < inner.start < inner.end < outer.end
        assert [s.name for s in tr.spans] == ["sampling", "step 0"]
        assert all(s.pid == 7 for s in tr.spans)

    def test_disabled_tracer_records_nothing(self):
        tr = make_tracer(enabled=False)
        assert tr.begin("x") is None
        assert tr.end() is None
        assert tr.add("x", "stage", 0.0, 1.0) is None
        assert tr.instant("x") is None
        assert tr.spans == [] and tr._stack == []

    def test_end_without_begin_is_tolerated(self):
        # A hook whose on_stage_start raised produces an unbalanced end.
        tr = make_tracer()
        assert tr.end() is None
        assert tr.spans == []

    def test_span_context_manager(self):
        tr = make_tracer()
        with tr.span("estimate", "stage"):
            pass
        assert tr.spans[0].name == "estimate"
        assert tr.spans[0].duration > 0

    def test_annotate_merges_into_open_span(self):
        tr = make_tracer()
        tr.begin("sort", "kernel", flops=10)
        tr.annotate(bytes_read=20)
        span = tr.end()
        assert span.attrs == {"flops": 10, "bytes_read": 20}

    def test_add_records_explicit_interval(self):
        tr = make_tracer()
        span = tr.add("exchange", "stage", 5.0, 9.0, attrs={"kernel": "route"})
        assert span.start == 5.0 and span.end == 9.0 and span.duration == 4.0

    def test_counters_live_while_disabled(self):
        tr = make_tracer(enabled=False)
        tr.count("transport_fallbacks")
        tr.count("transport_fallbacks", 2)
        assert tr.counters == {"transport_fallbacks": 3.0}

    def test_drain_detaches_and_clears(self):
        tr = make_tracer()
        tr.add("a", "stage", 0.0, 1.0)
        tr.count("c", 5)
        spans, counters = tr.drain()
        assert len(spans) == 1 and counters == {"c": 5.0}
        assert tr.spans == [] and tr.counters == {}

    def test_merge_adopts_foreign_spans_and_labels(self):
        tr = make_tracer()
        foreign = [Span("sampling", "stage", 1.0, 2.0, pid=999)]
        tr.merge(foreign, label="worker-3")
        assert tr.spans[-1].pid == 999
        assert tr.labels[999] == "worker-3"


class TestWireFormat:
    def test_round_trip_preserves_everything(self):
        spans = [
            Span("sampling", "stage", 1.0, 2.0, pid=11, tid=0, attrs={"k": 3}),
            Span("sort", "kernel", 1.5, 1.75, pid=11, tid=0),
        ]
        back = spans_from_wire(spans_to_wire(spans))
        assert [(s.name, s.kind, s.start, s.end, s.pid, s.attrs) for s in back] \
            == [(s.name, s.kind, s.start, s.end, s.pid, s.attrs) for s in spans]

    def test_offset_shifts_the_clock(self):
        # The master re-bases worker spans: offset = recv_clock - reply_clock.
        rows = spans_to_wire([Span("resample", "stage", 10.0, 11.0, pid=5)])
        shifted = spans_from_wire(rows, offset=100.0)
        assert shifted[0].start == 110.0 and shifted[0].end == 111.0
        assert shifted[0].duration == pytest.approx(1.0)

    def test_open_spans_are_not_shipped(self):
        rows = spans_to_wire([Span("open", "stage", 1.0, None)])
        assert rows == []


class TestExporterIsolation:
    def test_raising_exporter_is_swallowed_and_counted(self):
        reset_hook_error_warnings()

        class Boom:
            def export(self, spans, counters, labels=None):
                raise RuntimeError("exporter broke")

        tr = make_tracer()
        tr.attach(Boom())
        tr.add("a", "stage", 0.0, 1.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            tr.flush()  # must not raise
            tr.flush()
        assert tr.counters["telemetry_errors"] == 2.0
        # Warned once per site, not once per failure.
        assert sum(issubclass(w.category, RuntimeWarning) for w in caught) == 1
        reset_hook_error_warnings()

    def test_attach_enables_recording(self):
        class Sink:
            def export(self, spans, counters, labels=None):
                self.got = (list(spans), dict(counters))

        tr = Tracer(clock=FakeClock(), enabled=False)
        sink = tr.attach(Sink())
        assert tr.enabled
        tr.add("a", "stage", 0.0, 1.0)
        tr.flush()
        assert len(sink.got[0]) == 1


class TestWarnOnce:
    def test_one_warning_per_site(self):
        reset_hook_error_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_hook_error_once("SiteA.method")
            warn_hook_error_once("SiteA.method")
            warn_hook_error_once("SiteB.method")
        assert len(caught) == 2
        reset_hook_error_warnings()


def test_run_metadata_fields():
    meta = run_metadata()
    assert set(meta) == {"git_sha", "python", "numpy", "platform",
                         "machine", "cpu_count"}
    assert meta["python"] and meta["numpy"]
