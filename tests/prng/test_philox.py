"""Tests for the counter-based Philox4x32 generator."""

import numpy as np
import pytest

from repro.prng import Philox4x32


def test_deterministic_given_counter():
    p = Philox4x32(key=42)
    a = p.generate(np.arange(10, dtype=np.uint64))
    b = p.generate(np.arange(10, dtype=np.uint64))
    assert np.array_equal(a, b)


def test_counters_give_distinct_blocks():
    p = Philox4x32(key=42)
    out = p.generate(np.arange(1000, dtype=np.uint64))
    # All 4-word blocks distinct (bijection on the counter space).
    as_tuples = {tuple(row) for row in out.tolist()}
    assert len(as_tuples) == 1000


def test_keys_decorrelate_streams():
    c = np.arange(256, dtype=np.uint64)
    a = Philox4x32(key=1).generate(c)
    b = Philox4x32(key=2).generate(c)
    assert not np.array_equal(a, b)
    # No block collisions across keys either.
    assert not set(map(tuple, a.tolist())) & set(map(tuple, b.tolist()))


def test_stream_lanes_decorrelate():
    p = Philox4x32(key=9)
    c = np.arange(256, dtype=np.uint64)
    a = p.generate(c, key_lanes=np.zeros(256, dtype=np.uint64))
    b = p.generate(c, key_lanes=np.ones(256, dtype=np.uint64))
    assert not np.array_equal(a, b)


def test_uniform_statistics():
    u = Philox4x32(key=3).uniform(0, 100_000)
    assert u.min() >= 0.0 and u.max() < 1.0
    assert abs(u.mean() - 0.5) < 0.01


def test_uniform_is_contiguous_in_counter_space():
    p = Philox4x32(key=3)
    whole = p.uniform(0, 64)
    first, second = p.uniform(0, 32), p.uniform(8, 32)  # 32 values = 8 counters
    assert np.array_equal(whole[:32], first)
    assert np.array_equal(whole[32:], second)


def test_rounds_validation():
    with pytest.raises(ValueError):
        Philox4x32(key=0, rounds=0)
