"""Tests for RNG front-ends, stream management, xorshift and MTGP banks."""

import numpy as np
import pytest

from repro.prng import (
    MTGPStreams,
    NumpyRNG,
    PhiloxRNG,
    StreamManager,
    XorShift128Plus,
    XorShiftRNG,
    make_rng,
    splitmix64,
)


@pytest.mark.parametrize("kind", ["philox", "xorshift", "numpy"])
class TestFilterRNGContract:
    def test_uniform_shape_dtype_range(self, kind):
        rng = make_rng(kind, seed=11)
        u = rng.uniform((5, 7), dtype=np.float32)
        assert u.shape == (5, 7) and u.dtype == np.float32
        assert (u >= 0).all() and (u < 1).all()

    def test_normal_shape_and_moments(self, kind):
        rng = make_rng(kind, seed=11)
        z = rng.normal((40_000,))
        assert abs(z.mean()) < 0.03 and abs(z.std() - 1.0) < 0.03

    def test_reproducible_given_seed(self, kind):
        a = make_rng(kind, seed=5).uniform((100,))
        b = make_rng(kind, seed=5).uniform((100,))
        assert np.array_equal(a, b)

    def test_seeds_differ(self, kind):
        a = make_rng(kind, seed=5).uniform((100,))
        b = make_rng(kind, seed=6).uniform((100,))
        assert not np.array_equal(a, b)

    def test_spawned_streams_are_independent(self, kind):
        root = make_rng(kind, seed=5)
        a = root.spawn(0).uniform((256,))
        b = root.spawn(1).uniform((256,))
        assert not np.array_equal(a, b)

    def test_empty_request(self, kind):
        rng = make_rng(kind, seed=5)
        assert rng.uniform((0,)).shape == (0,)


def test_make_rng_unknown_kind():
    with pytest.raises(ValueError, match="unknown rng kind"):
        make_rng("quantum")


def test_philox_sequential_calls_advance():
    rng = PhiloxRNG(seed=1)
    a, b = rng.uniform((64,)), rng.uniform((64,))
    assert not np.array_equal(a, b)


def test_splitmix64_distinct_and_deterministic():
    a = splitmix64(123, 1000)
    assert len(set(a.tolist())) == 1000
    assert np.array_equal(a, splitmix64(123, 1000))


def test_xorshift_lanes_uncorrelated():
    bank = XorShift128Plus(seed=3, n_lanes=64)
    u = bank.uniform(2000)  # (2000, 64)
    c = np.corrcoef(u.T)
    off_diag = c[~np.eye(64, dtype=bool)]
    assert np.abs(off_diag).max() < 0.12


def test_xorshift_rng_spans_lane_rows():
    rng = XorShiftRNG(seed=3, n_lanes=8)
    u = rng.uniform((20,))  # needs 3 rows of 8 lanes
    assert u.shape == (20,)
    assert len(np.unique(u)) == 20


def test_mtgp_streams_shapes_and_independence():
    bank = MTGPStreams(seed=1, n_groups=4)
    u = bank.uniform(100)
    assert u.shape == (4, 100)
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(u[i], u[j])


def test_mtgp_normals():
    bank = MTGPStreams(seed=1, n_groups=2)
    z = bank.normal(20_000)
    assert abs(z.mean()) < 0.05 and abs(z.std() - 1.0) < 0.05


def test_stream_manager_reproducible_and_bounded():
    mgr = StreamManager(seed=9, n_streams=4, kind="philox")
    a = mgr.stream(2).uniform((16,))
    b = StreamManager(seed=9, n_streams=4, kind="philox").stream(2).uniform((16,))
    assert np.array_equal(a, b)
    with pytest.raises(IndexError):
        mgr.stream(4)
    assert len(mgr.all_streams()) == 4


def test_numpy_rng_normal_override():
    z = NumpyRNG(seed=0).normal((10,), dtype=np.float32)
    assert z.dtype == np.float32
