"""Bit-exactness and statistical tests for the from-scratch MT19937."""

import numpy as np
import pytest

from repro.prng import MT19937

# First outputs of MT19937 seeded with init_genrand(5489) — the C++ standard's
# default-constructed std::mt19937 sequence.
_SEED5489_FIRST = [
    3499211612, 581869302, 3890346734, 3586334585, 545404204,
    4161255391, 3922919429, 949333985, 2715962298, 1323567403,
]

# init_by_array({0x123, 0x234, 0x345, 0x456}); verified against a direct
# transliteration of mt19937ar.c (the seed-5489 and C++-standard 10000th-value
# tests above pin the same engine independently).
_ARRAY_SEED_FIRST = [
    1067595299, 955945823, 477289528, 4107218783, 4228976476,
    3344332714, 3355579695, 227628506, 810200273, 2591290167,
]


def test_seed5489_reference_outputs():
    gen = MT19937(5489)
    out = gen.random_uint32(10)
    assert out.tolist() == _SEED5489_FIRST


def test_cxx_standard_10000th_value():
    # The C++ standard (29.6.5) requires the 10000th output of a
    # default-seeded mt19937 to be 4123659995.
    gen = MT19937(5489)
    out = gen.random_uint32(10000)
    assert int(out[-1]) == 4123659995


def test_init_by_array_reference_outputs():
    gen = MT19937([0x123, 0x234, 0x345, 0x456])
    out = gen.random_uint32(10)
    assert out.tolist() == _ARRAY_SEED_FIRST


def test_block_boundary_consistency():
    # Drawing in odd-sized chunks must match one big draw (buffer refills are
    # transparent).
    a = MT19937(12345).random_uint32(2000)
    gen = MT19937(12345)
    parts = [gen.random_uint32(n) for n in (1, 7, 623, 624, 625, 120)]
    b = np.concatenate(parts)
    assert np.array_equal(a, b)


def test_uniform_range_and_mean():
    u = MT19937(7).random_uniform(100_000)
    assert u.min() >= 0.0 and u.max() < 1.0
    assert abs(u.mean() - 0.5) < 0.01
    assert abs(u.var() - 1.0 / 12.0) < 0.005


def test_different_seeds_differ():
    a = MT19937(1).random_uint32(100)
    b = MT19937(2).random_uint32(100)
    assert not np.array_equal(a, b)


@pytest.mark.parametrize("n", [0, -3])
def test_invalid_draw_count_rejected(n):
    with pytest.raises((ValueError, TypeError)):
        MT19937(1).random_uint32(n)
