"""Tests for the Box-Muller transform."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.prng import box_muller, box_muller_pairs


def test_pairs_shapes_and_independence():
    rng = np.random.default_rng(0)
    u1, u2 = rng.random(50_000), rng.random(50_000)
    z0, z1 = box_muller_pairs(u1, u2)
    assert z0.shape == z1.shape == (50_000,)
    for z in (z0, z1):
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02
    # Cross-correlation of the two outputs should vanish.
    assert abs(np.corrcoef(z0, z1)[0, 1]) < 0.02


def test_pairs_shape_mismatch_raises():
    with pytest.raises(ValueError):
        box_muller_pairs(np.zeros(3), np.zeros(4))


def test_zero_uniform_is_finite():
    z0, z1 = box_muller_pairs(np.array([0.0]), np.array([0.5]))
    assert np.isfinite(z0).all() and np.isfinite(z1).all()


@pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 100, 101])
def test_flat_transform_preserves_length(n):
    u = np.random.default_rng(1).random(n)
    z = box_muller(u)
    assert z.shape == (n,)
    assert np.isfinite(z).all()


def test_flat_transform_is_standard_normal():
    u = np.random.default_rng(2).random(200_000)
    z = box_muller(u)
    assert abs(z.mean()) < 0.01
    assert abs(z.std() - 1.0) < 0.01
    # Check tails roughly: P(|Z| > 2) ~ 4.55%
    frac = np.mean(np.abs(z) > 2.0)
    assert 0.035 < frac < 0.055


@given(st.integers(min_value=2, max_value=512))
def test_flat_transform_finite_for_any_length(n):
    u = np.linspace(0.0, 1.0, n, endpoint=False)
    z = box_muller(u)
    assert z.shape == (n,)
    assert np.isfinite(z).all()
