# Convenience targets for the Esthera-Py reproduction.

PYTHON ?= python

.PHONY: install test bench bench-kernels bench-sessions bench-shard report examples all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-kernels:
	$(PYTHON) -m repro.cli bench kernels -o BENCH_kernels.json

bench-sessions:
	$(PYTHON) -m repro.cli bench sessions -o BENCH_sessions.json

bench-shard:
	$(PYTHON) -m repro.cli bench shard -o BENCH_shard.json

report:
	$(PYTHON) -m repro.cli report -o report.md

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/robot_arm_tracking.py
	$(PYTHON) examples/platform_projection.py
	$(PYTHON) examples/simt_kernel_playground.py

all: test bench

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
