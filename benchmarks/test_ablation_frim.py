"""Ablation: FRIM sampling (related work [19]) vs plain sampling.

FRIM's pitch is that importance-maximizing redraws reduce the number of
particles needed; its cost is a bounded number of extra sampling kernels.
"""


from repro.bench import format_table
from repro.bench.harness import sweep_error
from repro.core import DistributedFilterConfig


def test_frim_vs_plain_small_budgets(benchmark, run_once):
    def sweep():
        rows = []
        for m, N in ((8, 32), (16, 32), (32, 32)):
            base = dict(n_particles=m, n_filters=N, estimator="weighted_mean")
            plain = sweep_error(DistributedFilterConfig(**base), n_runs=5, n_steps=60)
            frim = sweep_error(DistributedFilterConfig(**base, frim_redraws=3), n_runs=5, n_steps=60)
            rows.append({"m": m, "N": N, "plain": plain, "frim_r3": frim})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Ablation: FRIM redraws vs plain sampling ==")
    print(format_table(rows))
    # In its design regime (populations that can afford losing a little
    # diversity) FRIM never substantially hurts and helps somewhere. At
    # *tiny* populations its greedy redraws can lock the filter onto a wrong
    # mode of the camera likelihood — a known bias of the method, visible if
    # the sweep is extended to (m=8, N=8).
    assert all(r["frim_r3"] < r["plain"] * 1.25 + 0.02 for r in rows)
    assert any(r["frim_r3"] < r["plain"] for r in rows)
