"""Fig. 3: achieved particle-filter update rate vs number of particles.

Times one vectorized filtering round on the host (the directly measurable
quantity) and regenerates the full cross-platform table from the cost model,
validating the paper's ordering claims.
"""

import pytest

from repro.bench import format_table, run_fig3
from repro.bench.harness import arm_truth
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import RobotArmModel


@pytest.mark.parametrize("total", [4096, 32768])
def test_fig3_host_step_rate(benchmark, total):
    """Wall-clock cost of one distributed filtering round on this host."""
    model = RobotArmModel()
    cfg = DistributedFilterConfig(n_particles=64, n_filters=total // 64, seed=0)
    pf = DistributedParticleFilter(model, cfg)
    truth = arm_truth(3, seed=5, model=model)
    pf.initialize()
    pf.step(truth.measurements[0], truth.controls[0])

    k = [1]

    def one_round():
        pf.step(truth.measurements[k[0] % 3], truth.controls[k[0] % 3])
        k[0] += 1

    benchmark(one_round)
    assert pf.k > 1


def test_fig3_platform_table(benchmark, run_once):
    rows = run_once(benchmark, run_fig3, [1 << k for k in range(10, 23, 2)], None, False)
    print("\n== Fig 3: update rate (Hz) vs total particles ==")
    print(format_table(rows))

    at = {r["total_particles"]: r for r in rows}
    one_m = at[1 << 20]
    # "a few hundred state estimations per second with one million particles"
    assert 100 <= one_m["gtx-580"] <= 1000
    assert 100 <= one_m["hd-7970"] <= 1000
    # Dual CPU several times the sequential centralized reference.
    assert 3.0 < one_m["2x-e5-2650"] / one_m["seq_centralized"] < 12.0
    # High-end GPU clearly ahead of the dual CPU at large populations.
    assert one_m["hd-7970"] > 3 * one_m["2x-e5-2650"]
    # Radeons behind at the smallest size, HD 7970 winning at the largest.
    small, large = at[1 << 10], at[1 << 22]
    assert small["hd-6970"] < small["gtx-580"]
    gpu_cols = ["gtx-580", "gtx-680", "hd-6970", "hd-7970"]
    assert max(gpu_cols, key=lambda c: large[c]) == "hd-7970"
    # Monotone decrease with population size on every platform.
    for col in gpu_cols + ["i7-2820qm", "2x-e5-2650", "seq_centralized"]:
        series = [r[col] for r in rows]
        assert all(a > b for a, b in zip(series, series[1:]))
