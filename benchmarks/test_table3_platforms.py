"""Table III: the six hardware platforms, plus the OpenCL-vs-CUDA check."""

from repro.bench import format_table, table3_rows
from repro.device import filter_round_cost, get_platform


def test_table3_platforms(benchmark, run_once):
    rows = run_once(benchmark, table3_rows)
    print("\n== Table III: hardware platforms ==")
    print(format_table(rows))
    assert len(rows) == 6
    by_key = {r["key"]: r for r in rows}
    assert by_key["gtx-580"]["cores_SMs_CUs"] == 16
    assert by_key["2x-e5-2650"]["type"] == "cpu"
    assert by_key["hd-7970"]["SP_GFLOPs"] == 3789.0
    # Dual-CPU TDP comparable to one GPU (the paper's pairing rationale).
    assert abs(by_key["2x-e5-2650"]["TDP_W"] - by_key["gtx-580"]["TDP_W"]) < 60


def test_opencl_within_5pct_of_cuda(benchmark):
    # Section VII-C: "our OpenCL code on the GTX 580 is at most 5% slower
    # than with CUDA" — modelled as a runtime-overhead factor.
    dev = get_platform("gtx-580")

    def both():
        cuda = filter_round_cost(dev, 512, 1024, 9).total_seconds
        opencl = filter_round_cost(dev.with_(runtime_overhead=1.05), 512, 1024, 9).total_seconds
        return cuda, opencl

    cuda, opencl = benchmark(both)
    assert 1.0 < opencl / cuda <= 1.05 + 1e-9
