"""Shared benchmark configuration.

Every benchmark both *times* a piece of the system (via the ``benchmark``
fixture, so ``--benchmark-only`` runs the full suite) and *validates* the
shape the paper reports, printing the regenerated table for EXPERIMENTS.md.
"""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark clock and return its result.

    Error sweeps are deterministic given seeds and far too slow to repeat;
    one timed round records their cost without distorting the suite runtime.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def run_once():
    return once
