"""Fig. 5: RWS vs Vose's alias method resampling runtime."""

import numpy as np
import pytest

from repro.bench import format_table, run_fig5_centralized, run_fig5_subfilter
from repro.prng import make_rng
from repro.resampling import RouletteWheelResampler, VoseAliasResampler


@pytest.mark.parametrize(
    "resampler",
    [RouletteWheelResampler(), VoseAliasResampler(parallel_build=True)],
    ids=["rws", "vose"],
)
@pytest.mark.parametrize("n", [4096, 65536])
def test_fig5_centralized_resample_timing(benchmark, resampler, n):
    """Direct wall-clock of one centralized resample at size n."""
    w = np.random.default_rng(0).random(n) + 1e-9
    rng = make_rng("numpy", seed=1)
    idx = benchmark(resampler.resample, w, n, rng)
    assert idx.shape == (n,)


@pytest.mark.parametrize(
    "resampler",
    [RouletteWheelResampler(), VoseAliasResampler(parallel_build=True)],
    ids=["rws", "vose"],
)
def test_fig5_subfilter_resample_timing(benchmark, resampler):
    """Batched sub-filter resampling (128 sub-filters of 512)."""
    w = np.random.default_rng(0).random((128, 512)) + 1e-9
    rng = make_rng("numpy", seed=1)
    idx = benchmark(resampler.resample_batch, w, 512, rng)
    assert idx.shape == (128, 512)


def test_fig5_shape_tables(benchmark, run_once):
    def both():
        return run_fig5_centralized(sizes=[1 << k for k in range(12, 21, 2)]), run_fig5_subfilter()

    central, sub = run_once(benchmark, both)
    print("\n== Fig 5 (centralized): RWS vs Vose ==")
    print(format_table(central))
    print("\n== Fig 5 (sub-filter, m=512): RWS vs Vose ==")
    print(format_table(sub))

    # Centralized: Vose's O(1) generation wins for large populations —
    # in the cost model (the paper's C filter) unambiguously.
    big = central[-1]
    assert big["vose_model_ms"] < 0.5 * big["rws_model_ms"]
    # Sub-filter scale: Vose is NOT faster (paper: "never faster" under
    # OpenCL at m=512) in the device model.
    for row in sub:
        assert row["vose_model_ms"] >= 0.95 * row["rws_model_ms"]
    # Host measurement: batched Vose's per-row table build cannot beat the
    # fully vectorized RWS either.
    for row in sub:
        assert row["vose_measured_ms"] >= 0.8 * row["rws_measured_ms"]
