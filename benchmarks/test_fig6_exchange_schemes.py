"""Fig. 6: estimation error across exchange schemes and network sizes."""


from repro.bench import format_table, run_fig6


def test_fig6_exchange_schemes(benchmark, run_once):
    rows = run_once(
        benchmark,
        run_fig6,
    )
    print("\n== Fig 6: estimation error by exchange scheme ==")
    print(format_table(rows))

    by = {(r["particles_per_filter"], r["n_filters"]): r for r in rows}

    # All-to-All delivers the worst estimates at scale (diversity collapse):
    # at the largest network size it must lose to Ring for every m.
    n_max = max(r["n_filters"] for r in rows)
    for m in sorted({r["particles_per_filter"] for r in rows}):
        r = by[(m, n_max)]
        assert r["all-to-all"] > r["ring"], f"m={m}: all-to-all should be worst at N={n_max}"

    # A low particle count can be compensated by adding more sub-filters:
    # for the smallest m, error decreases with N under Ring.
    m_min = min(r["particles_per_filter"] for r in rows)
    ns = sorted({r["n_filters"] for r in rows})
    ring_series = [by[(m_min, n)]["ring"] for n in ns]
    assert ring_series[-1] < ring_series[0]

    # Small-m many-filters reaches the accuracy class of large-m few-filters.
    m_max = max(r["particles_per_filter"] for r in rows)
    assert by[(m_min, n_max)]["ring"] < 2.0 * by[(m_max, ns[0])]["ring"] + 0.05
