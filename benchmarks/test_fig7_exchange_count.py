"""Fig. 7: estimation error vs number of exchanged particles (t = 0, 1, 2)."""

import numpy as np

from repro.bench import format_table, run_fig7


def test_fig7_exchange_count(benchmark, run_once):
    rows = run_once(benchmark, run_fig7)
    print("\n== Fig 7: estimation error vs particles per exchange ==")
    print(format_table(rows))

    # "the benefit of particle exchange is evident": t=1 beats t=0 in the
    # clear majority of configurations (single-run Monte Carlo noise makes a
    # strict per-cell ordering too brittle)...
    wins = sum(r["t=1"] < r["t=0"] for r in rows)
    assert wins >= (2 * len(rows)) // 3, f"t=1 only beat t=0 in {wins}/{len(rows)} configs"
    # ...and medians across configurations agree.
    med_t0 = np.median([r["t=0"] for r in rows])
    med_t1 = np.median([r["t=1"] for r in rows])
    med_t2 = np.median([r["t=2"] for r in rows])
    assert med_t1 < med_t0
    # Exchanging more than one particle offers at most a minor improvement.
    assert abs(med_t2 - med_t1) < 0.75 * (med_t0 - med_t1) + 0.02
