"""Related-work algorithm comparison: GDPF / LDPF / CDPF / RNA / RPA vs the
paper's exchange-based distributed filter, at equal particle totals.

Related work found LDPF both accurate and fast [10], RNA the best-scaling
non-Gaussian variant [13], RPA more accurate than RNA [11]; the paper's
contribution is matching the accuracy of globally-coordinated schemes while
keeping every operation local. This bench puts all of them side by side.
"""

import numpy as np

from repro.baselines import (
    CompressedDistributedPF,
    GlobalDistributedPF,
    LocalDistributedPF,
    RNAExchangePF,
    RPAProportionalPF,
)
from repro.bench import format_table
from repro.bench.harness import arm_truth
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import RobotArmModel


def test_variant_accuracy_comparison(benchmark, run_once):
    def sweep():
        model = RobotArmModel()
        cfg = DistributedFilterConfig(n_particles=32, n_filters=32, estimator="weighted_mean")
        variants = {
            "esthera (ring, t=1)": lambda s: DistributedParticleFilter(model, cfg.with_(seed=s, topology="ring", n_exchange=1)),
            "gdpf (global resample)": lambda s: GlobalDistributedPF(model, cfg.with_(seed=s)),
            "ldpf (isolated)": lambda s: LocalDistributedPF(model, cfg.with_(seed=s)),
            "cdpf (compressed)": lambda s: CompressedDistributedPF(model, cfg.with_(seed=s), compress=4),
            "rna (post-exchange)": lambda s: RNAExchangePF(model, cfg.with_(seed=s, topology="ring", n_exchange=1)),
            "rpa (proportional)": lambda s: RPAProportionalPF(model, cfg.with_(seed=s)),
        }
        rows = []
        for name, make in variants.items():
            errs = []
            for r in range(4):
                truth = arm_truth(60, seed=3000 + r, model=model)
                errs.append(run_filter(make(r), model, truth).mean_error(warmup=20))
            rows.append({"variant": name, "object_error_m": float(np.mean(errs))})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Related-work variant comparison (equal totals, 1024 particles) ==")
    print(format_table(rows))
    by = {r["variant"]: r["object_error_m"] for r in rows}
    ours = by["esthera (ring, t=1)"]
    # The paper's claim: fully local exchange matches globally-coordinated
    # resampling in accuracy (GDPF/RPA are the coordination-heavy references).
    assert ours < 1.35 * by["gdpf (global resample)"] + 0.02
    assert ours < 1.35 * by["rpa (proportional)"] + 0.02
    # And it should not lose to the no-communication LDPF.
    assert ours < by["ldpf (isolated)"] * 1.1 + 0.02
    # Everything stays bounded (no variant diverges at this budget).
    assert all(v < 1.0 for v in by.values())
