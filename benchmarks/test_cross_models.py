"""Integration bench: the same distributed filter across four estimation
problems — the framework-generality claim ("new dynamical system models can
be easily added")."""

import numpy as np

from repro.bench import format_table
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import (
    BearingsOnlyModel,
    LinearGaussianModel,
    StochasticVolatilityModel,
    UNGMModel,
)
from repro.prng import make_rng


def test_distributed_filter_across_models(benchmark, run_once):
    def sweep():
        models = {
            "linear_gaussian": LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]]),
            "ungm": UNGMModel(),
            "bearings_only": BearingsOnlyModel(),
            "stochastic_volatility": StochasticVolatilityModel(),
        }
        rows = []
        for name, model in models.items():
            errs, rates = [], []
            for r in range(3):
                truth = model.simulate(60, make_rng("numpy", seed=400 + r))
                cfg = DistributedFilterConfig(
                    n_particles=64, n_filters=16, estimator="weighted_mean", seed=r
                )
                run = run_filter(DistributedParticleFilter(model, cfg), model, truth)
                errs.append(run.mean_error(warmup=15))
                rates.append(run.update_rate_hz)
            rows.append({"model": name, "error": float(np.mean(errs)), "host_hz": float(np.mean(rates))})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== One filter, four estimation problems ==")
    print(format_table(rows))
    by = {r["model"]: r["error"] for r in rows}
    assert by["linear_gaussian"] < 0.3
    assert by["bearings_only"] < 0.3
    assert by["stochastic_volatility"] < 1.0  # weakly identified latent vol
    assert by["ungm"] < 12.0  # bimodal benchmark: bounded, not tiny
    assert all(r["host_hz"] > 50 for r in rows)
