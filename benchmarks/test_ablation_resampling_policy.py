"""Ablation (Section IV): always-resample vs ESS-threshold vs random
frequency. The paper: "although it might be beneficial for low particle
settings, frequent resampling generally yields better results"."""


from repro.bench import format_table
from repro.bench.harness import sweep_error
from repro.core import DistributedFilterConfig


def test_resampling_policy_ablation(benchmark, run_once):
    def sweep():
        rows = []
        for policy, arg, label in (
            ("always", 0.5, "always"),
            ("ess", 0.5, "ess_0.5"),
            ("frequency", 0.5, "freq_0.5"),
            ("frequency", 0.25, "freq_0.25"),
        ):
            cfg = DistributedFilterConfig(
                n_particles=32,
                n_filters=16,
                estimator="weighted_mean",
                resample_policy=policy,
                resample_arg=arg,
            )
            rows.append({"policy": label, "error": sweep_error(cfg, n_runs=3, n_steps=60)})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Ablation: resampling policy ==")
    print(format_table(rows))
    by = {r["policy"]: r["error"] for r in rows}
    # Frequent resampling wins (or at least is never clearly beaten by rare
    # resampling) on this model.
    assert by["always"] < by["freq_0.25"] * 1.25 + 0.02
    # All policies stay in a sane band (the filter never diverges).
    assert all(r["error"] < 1.0 for r in rows)
