"""Fig. 8: lemniscate ground truth; high-particle filter converges, the
low-particle filter does not."""


from repro.bench import run_fig8


def test_fig8_convergence(benchmark, run_once):
    result = run_once(benchmark, run_fig8)
    print("\n== Fig 8: lemniscate convergence ==")
    print(f"high-particle filter converged at step: {result['high_converged_at']}")
    print(f"low-particle filter converged at step:  {result['low_converged_at']}")
    print(f"high final error: {result['high_errors'][-20:].mean():.3f} m")
    print(f"low final error:  {result['low_errors'][-20:].mean():.3f} m")

    assert result["ground_truth"].shape[1] == 2
    # The high-particle estimation converges to the known path...
    assert result["high_converged_at"] is not None
    assert result["high_errors"][-20:].mean() < 0.25
    # ...the low-particle estimation is not enough (stays off or converges
    # far later and worse).
    low, high = result["low_errors"][-20:].mean(), result["high_errors"][-20:].mean()
    assert low > 1.5 * high
