"""Fig. 9: distributed vs centralized estimation error at equal totals."""


from repro.bench import format_table, run_fig9


def test_fig9_distributed_overhead(benchmark, run_once):
    rows = run_once(benchmark, run_fig9)
    print("\n== Fig 9: distributed vs centralized error (equal totals) ==")
    print(format_table(rows))

    for row in rows:
        dist_cols = [k for k in row if k.startswith("distributed_")]
        best_dist = min(row[k] for k in dist_cols)
        # "for all filter sizes, distributed configurations exist which
        # perform similarly to (or even outperform) their centralized
        # counterparts."
        assert best_dist < 1.4 * row["centralized"] + 0.03

    # Very small sub-filters at the smallest total degrade accuracy relative
    # to the best configuration (the paper's warning case) — check the trend
    # on the largest total where m=4 gives N big enough to matter.
    last = rows[-1]
    if "distributed_m=4" in last and "distributed_m=64" in last:
        assert last["distributed_m=4"] >= 0.8 * last["distributed_m=64"] - 0.02
