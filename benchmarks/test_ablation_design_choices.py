"""Ablations for design choices the paper calls out.

- local full sort vs local-max selection (Section VI-C: sorting "can in
  principle be replaced by a cheaper operation such as a local maximum"),
- max-weight vs weighted-mean global estimate (Section IV: "what is a good
  function ... depends on the application"),
- exchange-graph connectivity between ring (2) and torus (4) via a random
  3-regular graph (networkx),
- best-t vs weight-sampled exchange selection (Algorithm 2, line 11).
"""


from repro.bench.harness import sweep_error
from repro.core import DistributedFilterConfig
from repro.topology import GraphTopology


def _cfg(**kw):
    base = dict(n_particles=32, n_filters=16, estimator="weighted_mean")
    base.update(kw)
    return DistributedFilterConfig(**base)


def test_selection_sort_vs_max(benchmark, run_once):
    def sweep():
        return {
            "sort": sweep_error(_cfg(selection="sort"), n_runs=3, n_steps=60),
            "max": sweep_error(_cfg(selection="max"), n_runs=3, n_steps=60),
        }

    errs = run_once(benchmark, sweep)
    print("\n== Ablation: local sort vs local max selection ==", errs)
    # With t=1 the local max carries the same information as the sort; the
    # accuracies must be in the same class.
    assert errs["max"] < 1.5 * errs["sort"] + 0.05


def test_estimator_choice(benchmark, run_once):
    def sweep():
        return {
            "max_weight": sweep_error(_cfg(estimator="max_weight"), n_runs=3, n_steps=60),
            "weighted_mean": sweep_error(_cfg(estimator="weighted_mean"), n_runs=3, n_steps=60),
        }

    errs = run_once(benchmark, sweep)
    print("\n== Ablation: global estimator ==", errs)
    # The MMSE (weighted-mean) estimate is at least as good as the paper's
    # max-weight particle; both must track.
    assert errs["weighted_mean"] <= errs["max_weight"] * 1.1 + 0.02
    assert errs["max_weight"] < 1.0


def test_intermediate_connectivity_graph(benchmark, run_once):
    def sweep():
        ring = sweep_error(_cfg(topology="ring"), n_runs=3, n_steps=60)
        reg3 = sweep_error(
            _cfg(topology=GraphTopology.random_regular(3, 16, seed=1)), n_runs=3, n_steps=60
        )
        torus = sweep_error(_cfg(topology="torus"), n_runs=3, n_steps=60)
        return {"ring(2)": ring, "regular(3)": reg3, "torus(4)": torus}

    errs = run_once(benchmark, sweep)
    print("\n== Ablation: exchange-graph connectivity ==", errs)
    # All three connected low-degree schemes land in one accuracy class.
    vals = list(errs.values())
    assert max(vals) < 2.0 * min(vals) + 0.05


def test_exchange_selection_mode(benchmark, run_once):
    def sweep():
        return {
            "best": sweep_error(_cfg(exchange_select="best"), n_runs=3, n_steps=60),
            "sample": sweep_error(_cfg(exchange_select="sample"), n_runs=3, n_steps=60),
        }

    errs = run_once(benchmark, sweep)
    print("\n== Ablation: exchange selection (best-t vs weight-sampled) ==", errs)
    assert errs["sample"] < 2.0 * errs["best"] + 0.05
