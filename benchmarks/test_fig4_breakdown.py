"""Fig. 4: per-kernel runtime breakdown under three scaling directions."""

from repro.bench import format_table, measured_breakdown, run_fig4a, run_fig4b, run_fig4c


def test_fig4a_particles_per_subfilter(benchmark, run_once):
    rows = run_once(benchmark, run_fig4a)
    print("\n== Fig 4a: breakdown vs particles per sub-filter (GTX 580) ==")
    print(format_table(rows))
    first, last = rows[0], rows[-1]
    # Compute-heavy sorting and resampling stages grow to dominate...
    assert last["sort"] + last["resample"] > first["sort"] + first["resample"]
    # ...at the cost of the non-local stages.
    assert last["estimate"] + last["exchange"] < first["estimate"] + first["exchange"]


def test_fig4b_number_of_subfilters(benchmark, run_once):
    rows = run_once(benchmark, run_fig4b)
    print("\n== Fig 4b: breakdown vs number of sub-filters (GTX 580) ==")
    print(format_table(rows))
    last, prev = rows[-1], rows[-2]
    # Changes settle down approaching 8K sub-filters...
    for k in ("rand", "sampling", "sort", "estimate", "exchange", "resample"):
        assert abs(last[k] - prev[k]) < 0.02
    # ...with execution time rising linearly once the device is saturated.
    assert 1.8 < last["total_ms"] / prev["total_ms"] < 2.2
    # Local sort is the largest local stage at scale.
    assert last["sort"] >= max(last["estimate"], last["exchange"])


def test_fig4c_state_dimensions(benchmark, run_once):
    rows = run_once(benchmark, run_fig4c)
    print("\n== Fig 4c: breakdown vs state dimensions (GTX 580) ==")
    print(format_table(rows))
    first, last = rows[0], rows[-1]
    # Sampling (with weight calculation) grows to dominate the runtime as the
    # model becomes the determining factor.
    assert last["sampling"] > first["sampling"]
    assert last["sampling"] > 0.55
    assert last["sort"] < first["sort"] and last["resample"] < first["resample"]


def test_fig4_measured_host_breakdown(benchmark, run_once):
    fractions = run_once(benchmark, measured_breakdown)
    print("\n== Fig 4 (measured on host, vectorized backend) ==")
    print({k: round(v, 3) for k, v in fractions.items()})
    assert abs(sum(fractions.values()) - 1.0) < 1e-6
    # Sampling + rand (the model work) must be a visible share on the host too.
    assert fractions["sampling"] + fractions["rand"] > 0.2
