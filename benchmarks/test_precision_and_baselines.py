"""Section VI precision claim and baseline-filter comparison bench.

- float32 vs float64: "We compared delivered estimates with those from our
  double precision reference and found that it does not improve our
  estimation accuracy by a meaningful amount."
- Parametric baselines (EKF/UKF/GPF) vs the distributed PF on the strongly
  non-linear camera model: the PF must be competitive, which is the paper's
  reason to pay for particle filtering at all.
"""

import numpy as np

from repro.baselines import ExtendedKalmanFilter, GaussianParticleFilter, UnscentedKalmanFilter
from repro.bench import format_table
from repro.bench.harness import arm_truth, sweep_error
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import RobotArmModel


def test_float32_matches_float64(benchmark, run_once):
    def sweep():
        cfg32 = DistributedFilterConfig(n_particles=32, n_filters=32, dtype=np.float32, estimator="weighted_mean")
        cfg64 = DistributedFilterConfig(n_particles=32, n_filters=32, dtype=np.float64, estimator="weighted_mean")
        return {
            "float32": sweep_error(cfg32, n_runs=3, n_steps=60),
            "float64": sweep_error(cfg64, n_runs=3, n_steps=60),
        }

    errs = run_once(benchmark, sweep)
    print("\n== Precision: float32 vs float64 ==", errs)
    # Single precision must not lose a meaningful amount of accuracy.
    assert errs["float32"] < 1.2 * errs["float64"] + 0.02


def test_baselines_on_robot_arm(benchmark, run_once):
    def sweep():
        model = RobotArmModel()
        rows = []
        for label, make in (
            ("distributed_pf", lambda: DistributedParticleFilter(
                model, DistributedFilterConfig(n_particles=64, n_filters=32, estimator="weighted_mean", seed=0))),
            ("ekf", lambda: ExtendedKalmanFilter.for_robot_arm(model)),
            ("ukf", lambda: UnscentedKalmanFilter.for_robot_arm(model)),
            ("gaussian_pf", lambda: GaussianParticleFilter(model, n_particles=2048, seed=0)),
        ):
            errs = []
            for r in range(3):
                truth = arm_truth(60, seed=2000 + r, model=model)
                errs.append(run_filter(make(), model, truth).mean_error(warmup=20))
            rows.append({"filter": label, "object_error_m": float(np.mean(errs))})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Baselines on the robotic arm (object-position error, m) ==")
    print(format_table(rows))
    by = {r["filter"]: r["object_error_m"] for r in rows}
    # The particle filter must be competitive with every parametric baseline
    # on this strongly non-linear measurement model.
    assert by["distributed_pf"] <= min(by["ekf"], by["ukf"]) * 1.2 + 0.02
    assert all(v < 2.0 for v in by.values())  # nothing diverges outright
