"""Table II: default filter/model parameters (regenerated and validated)."""

from repro.bench import format_table, table2_rows


def test_table2_defaults(benchmark, run_once):
    rows = run_once(benchmark, table2_rows)
    print("\n== Table II: default filter and model parameters ==")
    print(format_table(rows))
    as_map = {r["parameter"]: r["value"] for r in rows}
    assert as_map["particles per sub-filter (GPU)"] == 512
    assert as_map["particles per sub-filter (CPU)"] == 64
    assert as_map["number of sub-filters"] == 1024
    assert as_map["exchange scheme"] == "ring"
    assert as_map["particles per exchange"] == 1
    assert as_map["number of joints"] == 5
    assert as_map["state dimension (#joints + 4)"] == 9
    assert as_map["arm length (meter)"] == 1.0
    for key in ("sigma theta (process, rad)", "sigma camera (m)", "sigma x/y (m)", "sigma vx/vy (m/s)"):
        assert as_map[key] == 0.1
