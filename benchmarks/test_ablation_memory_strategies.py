"""Ablations for Section VI's memory/data-movement design choices:

- AoS vs SoA particle layout,
- all-on-device vs transfer-to-host resampling (related work [2]),
- the diversity mechanism behind Fig. 6 (All-to-All overlap), measured.
"""


from repro.bench import format_table
from repro.core import (
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_with_diagnostics,
)
from repro.device import get_platform
from repro.device.costmodel import filter_round_cost_with_strategy
from repro.models import LinearGaussianModel
from repro.prng import make_rng


def test_aos_vs_soa_layout(benchmark, run_once):
    def sweep():
        dev = get_platform("gtx-580")
        rows = []
        for d in (9, 16, 32):
            aos = filter_round_cost_with_strategy(dev, 512, 2048, d, layout="aos")
            soa = filter_round_cost_with_strategy(dev, 512, 2048, d, layout="soa")
            rows.append({"state_dim": d, "aos_hz": aos.update_rate_hz, "soa_hz": soa.update_rate_hz,
                         "soa_penalty": soa.total_seconds / aos.total_seconds})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Ablation: AoS vs SoA particle layout (GTX 580, model) ==")
    print(format_table(rows))
    for row in rows:
        assert row["soa_penalty"] > 1.5  # AoS always wins for struct particles


def test_resampling_placement(benchmark, run_once):
    def sweep():
        dev = get_platform("gtx-580")
        rows = []
        device_side = filter_round_cost_with_strategy(dev, 512, 2048, 9)
        for period in (1, 2, 4, 8, 16):
            host = filter_round_cost_with_strategy(
                dev, 512, 2048, 9, resampling_location="host", resample_period=period
            )
            rows.append({"resample_period": period, "host_strategy_hz": host.update_rate_hz,
                         "device_strategy_hz": device_side.update_rate_hz})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Ablation: on-device vs transfer-to-host resampling (model) ==")
    print(format_table(rows))
    # Frequent resampling on the host is clearly slower; rare resampling
    # approaches the on-device rate (the related-work [2] trade-off).
    assert rows[0]["host_strategy_hz"] < 0.5 * rows[0]["device_strategy_hz"]
    assert rows[-1]["host_strategy_hz"] > 0.6 * rows[-1]["device_strategy_hz"]


def test_diversity_mechanism(benchmark, run_once):
    def sweep():
        model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.0004]])
        truth = model.simulate(20, make_rng("numpy", seed=0))
        rows = []
        for scheme in ("none", "ring", "torus", "all-to-all"):
            cfg = DistributedFilterConfig(
                n_particles=16, n_filters=32, topology=scheme, n_exchange=4,
                estimator="weighted_mean", seed=1,
            )
            _, tracker = run_with_diagnostics(DistributedParticleFilter(model, cfg), model, truth)
            s = tracker.summary()
            rows.append({"scheme": scheme, "unique_fraction": s["mean_unique_fraction"],
                         "cross_filter_overlap": s["mean_overlap"]})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Diversity mechanism behind Fig 6 (measured) ==")
    print(format_table(rows))
    by = {r["scheme"]: r for r in rows}
    # All-to-All has the lowest global diversity — the paper's explanation
    # for its poor accuracy.
    assert by["all-to-all"]["unique_fraction"] == min(r["unique_fraction"] for r in rows)
    assert by["none"]["cross_filter_overlap"] == 0.0
