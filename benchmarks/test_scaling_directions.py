"""Section IX future-work directions, implemented and benchmarked:
scaling *down* to embedded SoCs and *up* to clusters."""

from repro.bench import format_table
from repro.device import filter_round_cost, get_platform
from repro.device.scaling import EMBEDDED_PLATFORMS, ClusterSpec, cluster_round_cost, cluster_speedup


def test_embedded_scaling_down(benchmark, run_once):
    def sweep():
        rows = []
        for key, dev in EMBEDDED_PLATFORMS.items():
            for total, dim in ((4096, 6), (65536, 9), (1 << 20, 9)):
                m = 128 if dev.device_type == "gpu" else 32
                c = filter_round_cost(dev, m, max(total // m, 1), dim)
                rows.append({"platform": key, "total": total, "state_dim": dim, "hz": c.update_rate_hz})
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Scaling down: embedded platforms (model) ==")
    print(format_table(rows))
    by = {(r["platform"], r["total"]): r["hz"] for r in rows}
    # Small estimation problems reach usable real-time rates on the SoC GPU...
    assert by[("embedded-soc-gpu", 4096)] > 100
    # ...but the paper's 1M-particle setup is out of reach down there.
    assert by[("embedded-soc-gpu", 1 << 20)] < 30


def test_cluster_scaling_up(benchmark, run_once):
    def sweep():
        node = get_platform("gtx-580")
        rows = []
        for n_nodes in (1, 2, 4, 8, 16):
            cl = ClusterSpec(node=node, n_nodes=n_nodes)
            for scheme in ("ring", "all-to-all"):
                c = cluster_round_cost(cl, 512, 4096, 9, scheme=scheme)
                rows.append(
                    {
                        "nodes": n_nodes,
                        "scheme": scheme,
                        "hz": c.update_rate_hz,
                        "network_ms": c.seconds["network"] * 1e3,
                        "speedup": cluster_speedup(cl, 512, 4096, 9, scheme=scheme),
                    }
                )
        return rows

    rows = run_once(benchmark, sweep)
    print("\n== Scaling up: GTX 580 cluster, 2M particles (model) ==")
    print(format_table(rows))
    ring = {r["nodes"]: r["speedup"] for r in rows if r["scheme"] == "ring"}
    a2a = {r["nodes"]: r["speedup"] for r in rows if r["scheme"] == "all-to-all"}
    # The ring's constant per-node cut gives near-linear scaling...
    assert ring[8] > 6.0 and ring[16] > 10.0
    # ...while All-to-All's global pool scales strictly worse.
    assert a2a[16] < ring[16]
    # Speedup is monotone for the ring across this range.
    assert ring[2] < ring[4] < ring[8] < ring[16]
