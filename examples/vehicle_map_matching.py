#!/usr/bin/env python
"""Vehicle localization with map matching (the related-work [2] application).

A vehicle drives a route through a Manhattan road grid; GPS fixes are noisy
(sigma = 20 m, a whole lane-width scale). The particle filter fuses GPS with
the road map as a prior — particles off the network die out — and the
estimate snaps to the road even though the raw GPS does not.

Run:  python examples/vehicle_map_matching.py
"""

import networkx as nx
import numpy as np

from repro.bench import format_table
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import MapMatchingModel, grid_road_network, random_route
from repro.prng import make_rng


def main() -> None:
    g = grid_road_network(4, spacing=100.0)
    route = random_route(g, 10, seed=2)
    start = np.array(nx.get_node_attributes(g, "pos")[route[0]])
    print(f"road network: {g.number_of_nodes()} intersections, "
          f"{g.number_of_edges()} segments; route through {len(route)} nodes")

    rows = []
    for label, sigma_road in (("GPS + road map", 5.0), ("GPS only", 1e6)):
        model = MapMatchingModel(
            g, sigma_gps=20.0, sigma_road=sigma_road,
            x0_mean=np.array([start[0], start[1], 0.0, 0.0]),
        )
        truth = model.simulate_route(route, speed=10.0, n_steps=80, rng=make_rng("numpy", 0))
        pf = DistributedParticleFilter(
            model,
            DistributedFilterConfig(n_particles=64, n_filters=32, estimator="weighted_mean", seed=1),
        )
        run = run_filter(pf, model, truth)
        cross_track = float(np.mean([model.road_distance(e[:2]) for e in run.estimates[20:]]))
        gps_cross = float(np.mean(model.road_distance(truth.measurements[20:])))
        rows.append(
            {
                "configuration": label,
                "position_error_m": run.mean_error(warmup=20),
                "cross_track_m": cross_track,
                "raw_gps_cross_track_m": gps_cross,
            }
        )
    print(format_table(rows))
    print(
        "\nThe road prior cannot fix along-track ambiguity (any point on the\n"
        "road ahead explains the GPS equally well), but it collapses the\n"
        "cross-track error far below the raw GPS scatter: the filter knows\n"
        "the vehicle is ON the road. This is the multi-modal, constraint-\n"
        "shaped posterior that motivates particle filters for navigation."
    )


if __name__ == "__main__":
    main()
