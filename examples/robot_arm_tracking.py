#!/usr/bin/env python
"""The paper's robotic-arm experiment end to end (Figs. 2 and 8).

Simulates the lemniscate ground truth, runs a high-particle and a
low-particle distributed filter from an off-truth start, prints convergence
behaviour and an ASCII rendering of the tracked figure-eight.

Run:  python examples/robot_arm_tracking.py
"""

import numpy as np

from repro.bench import run_fig8


def ascii_plot(ground: np.ndarray, trace: np.ndarray, width: int = 61, height: int = 21) -> str:
    """Render the x-y plane with ground truth (.) and filter trace (*)."""
    pts = np.concatenate([ground, trace])
    lo = pts.min(axis=0) - 0.05
    hi = pts.max(axis=0) + 0.05
    grid = [[" "] * width for _ in range(height)]

    def put(p, ch):
        c = int((p[0] - lo[0]) / (hi[0] - lo[0]) * (width - 1))
        r = int((p[1] - lo[1]) / (hi[1] - lo[1]) * (height - 1))
        grid[height - 1 - r][c] = ch

    for p in ground:
        put(p, ".")
    for p in trace:
        put(p, "*")
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    result = run_fig8(n_steps=160)
    print("== Fig 8: lemniscate tracking, high vs low particle counts ==\n")
    print("ground truth (.)  vs  high-particle estimate (*):\n")
    print(ascii_plot(result["ground_truth"], result["high_trace"]))
    print()
    hi_conv, lo_conv = result["high_converged_at"], result["low_converged_at"]
    print(f"high-particle filter (32x32=1024): converged at step {hi_conv}, "
          f"final error {result['high_errors'][-30:].mean():.3f} m")
    lo_msg = f"step {lo_conv}" if lo_conv is not None else "never"
    print(f"low-particle filter  (2x2=4)     : converged {lo_msg}, "
          f"final error {result['low_errors'][-30:].mean():.3f} m")
    print("\nAs in the paper: enough particles lock onto the known path from an "
          "off-truth start; a tiny population cannot.")


if __name__ == "__main__":
    main()
