#!/usr/bin/env python
"""Project your filter configuration onto the paper's hardware (Table III).

Runs the filter functionally on the host while the device cost model accounts
simulated per-kernel time for each platform, reproducing the Fig. 3/4 views
for a configuration you choose.

Run:  python examples/platform_projection.py [total_particles]
"""

import sys

from repro import DistributedFilterConfig, DistributedParticleFilter
from repro.backends import DeviceSimulatedFilter
from repro.bench import format_table
from repro.bench.harness import arm_truth
from repro.device import PLATFORMS
from repro.models import RobotArmModel


def main() -> None:
    total = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 20
    model = RobotArmModel()

    rows = []
    for key, dev in PLATFORMS.items():
        m = 64 if dev.device_type == "cpu" else 512
        cfg = DistributedFilterConfig(n_particles=m, n_filters=max(total // m, 1), seed=0)
        sim = DeviceSimulatedFilter(DistributedParticleFilter(model, cfg), dev)
        breakdown = sim.simulated_breakdown()
        rows.append(
            {
                "platform": dev.name,
                "m": m,
                "N": cfg.n_filters,
                "simulated_Hz": sim.simulated_update_rate_hz,
                "sort_share": breakdown.get("sort", 0.0),
                "sampling_share": breakdown.get("sampling", 0.0),
                "resample_share": breakdown.get("resample", 0.0),
            }
        )
    print(f"== Simulated update rates at {total} total particles (robot arm, dim 9) ==")
    print(format_table(rows))

    # Demonstrate the wrapper end to end on a small functional run.
    cfg = DistributedFilterConfig(n_particles=32, n_filters=32, estimator="weighted_mean", seed=0)
    sim = DeviceSimulatedFilter(DistributedParticleFilter(model, cfg), "gtx-580")
    truth = arm_truth(30, seed=3, model=model)
    sim.initialize()
    for k in range(truth.n_steps):
        sim.step(truth.measurements[k], truth.controls[k])
    print(
        f"\nFunctional run of {truth.n_steps} rounds ({cfg.total_particles} particles): "
        f"simulated GTX 580 time {sim.simulated_seconds * 1e3:.2f} ms "
        f"({sim.simulated_update_rate_hz:.0f} Hz/round)"
    )


if __name__ == "__main__":
    main()
