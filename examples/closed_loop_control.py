#!/usr/bin/env python
"""Closed-loop control: the filter's estimate drives the arm.

The companion work the paper cites ([30], IEEE TCST) closes the loop on a
real robotic arm. Here the simulated arm is steered by a pointing controller
that only sees the particle filter's estimate; we compare how well the camera
keeps the moving object in view against the open-loop sweep, and show how
estimation quality (particle budget) feeds through to control quality.

Run:  python examples/closed_loop_control.py
"""

from repro.bench import format_table
from repro.control import PointingController, run_closed_loop
from repro.core import DistributedFilterConfig, DistributedParticleFilter
from repro.models import RobotArmModel, lemniscate
from repro.prng import make_rng


def main() -> None:
    model = RobotArmModel()
    pos, vel = lemniscate(160, h_s=model.params.h_s, center=(0.8, 0.0), scale=0.5)

    def pf(total_budget: int):
        m = max(total_budget // 32, 2)
        return DistributedParticleFilter(
            model,
            DistributedFilterConfig(n_particles=m, n_filters=32, estimator="weighted_mean", seed=2),
        )

    rows = []
    open_loop = run_closed_loop(model, pf(2048), pos, vel, make_rng("numpy", 7), None)
    rows.append(
        {
            "configuration": "open loop (sinusoid sweep)",
            "pointing_error_m": open_loop.mean_pointing_error(warmup=40),
            "estimation_error_m": open_loop.mean_estimation_error(warmup=40),
        }
    )
    for budget in (128, 512, 2048):
        res = run_closed_loop(
            model, pf(budget), pos, vel, make_rng("numpy", 7), PointingController(model)
        )
        rows.append(
            {
                "configuration": f"closed loop, {budget} particles",
                "pointing_error_m": res.mean_pointing_error(warmup=40),
                "estimation_error_m": res.mean_estimation_error(warmup=40),
            }
        )
    print("== Closed-loop pointing: keep the object on the camera axis ==")
    print(format_table(rows))
    print(
        "\nClosing the loop on the estimate keeps the object near the optical\n"
        "axis; more particles -> better estimates -> better control. This is\n"
        "why the paper pushes update *rate*: in a control loop the filter\n"
        "must deliver an estimate every sampling period, on time."
    )


if __name__ == "__main__":
    main()
