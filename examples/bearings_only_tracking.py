#!/usr/bin/env python
"""A different estimation problem: bearings-only target tracking.

The paper's framework "separates generic particle filtering from
model-specific routines [so] new dynamical system models can be easily
added". This example plugs in a four-state bearings-only tracking model (the
size class the paper quotes kHz rates for) and compares the distributed
particle filter against the parametric baselines.

Run:  python examples/bearings_only_tracking.py
"""

import numpy as np

from repro.baselines import ExtendedKalmanFilter, GaussianParticleFilter, UnscentedKalmanFilter
from repro.bench import format_table
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import BearingsOnlyModel
from repro.prng import make_rng


def main() -> None:
    model = BearingsOnlyModel()
    truth = model.simulate(120, make_rng("numpy", seed=5))

    def ekf():
        Q = np.diag([model.sigma_pos**2] * 2 + [model.sigma_vel**2] * 2)
        R = np.eye(model.measurement_dim) * model.sigma_bearing**2

        def f(x, u, k):
            out = np.asarray(x, dtype=np.float64).copy()
            out[:2] += model.h_s * x[2:]
            return out

        def h(x):
            return model._bearings(np.asarray(x))

        x0_cov = np.eye(4) * model.x0_spread**2
        return ExtendedKalmanFilter(f=f, h=h, Q=Q, R=R, x0_mean=model.x0_mean, x0_cov=x0_cov)

    def ukf():
        e = ekf()
        return UnscentedKalmanFilter(f=e.f, h=e.h, Q=e.Q, R=e.R, x0_mean=e.x0_mean, x0_cov=e.x0_cov)

    filters = {
        "distributed_pf": DistributedParticleFilter(
            model,
            DistributedFilterConfig(n_particles=64, n_filters=32, estimator="weighted_mean", seed=1),
        ),
        "gaussian_pf": GaussianParticleFilter(model, n_particles=2048, seed=1),
        "ekf": ekf(),
        "ukf": ukf(),
    }

    rows = []
    for name, flt in filters.items():
        run = run_filter(flt, model, truth)
        rows.append(
            {
                "filter": name,
                "position_error_m": run.mean_error(warmup=30),
                "update_rate_hz": run.update_rate_hz,
            }
        )
    print("== Bearings-only tracking (4-state model, 2 angle sensors) ==")
    print(format_table(rows))
    print(
        "\nAngle-only measurements are non-linear but close to unimodal here,\n"
        "so the parametric filters stay competitive - the regime the paper\n"
        "describes as suited to Kalman-family filters, while the robotic-arm\n"
        "camera model needs the particle filter."
    )


if __name__ == "__main__":
    main()
