#!/usr/bin/env python
"""Tracking through occlusion: a camera with a finite field of view.

Extension beyond the paper's unlimited camera: when the object leaves the
field of view, the detection is censored (the filter receives "no camera
measurement") and "seeing nothing" itself becomes evidence — particles that
predict the object inside the view are penalized. The filter coasts on the
joint sensors and the motion model, then re-acquires when the object returns.

Run:  python examples/occlusion_tracking.py
"""

import numpy as np

from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models import RobotArmModel, RobotArmParams, lemniscate, simulate_arm_tracking
from repro.prng import make_rng


def main() -> None:
    model = RobotArmModel(RobotArmParams(camera_fov=0.8))
    # A figure-eight wider than the field of view: the object leaves and
    # re-enters the camera's view every loop.
    pos, vel = lemniscate(200, h_s=model.params.h_s, scale=1.4, center=(0.6, 0.0))
    truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", 3))
    visible = ~np.isnan(truth.measurements[:, -1])
    print(f"object visible in {visible.sum()}/{len(visible)} steps "
          f"(occluded {np.sum(~visible)} steps)")

    pf = DistributedParticleFilter(
        model,
        DistributedFilterConfig(n_particles=64, n_filters=32, estimator="weighted_mean", seed=4),
    )
    run = run_filter(pf, model, truth)

    # Timeline: one character per step. '#' = visible, '.' = occluded,
    # upper-case where the filter error exceeded 0.4 m.
    timeline = "".join(
        ("#" if v else ".") if e < 0.4 else ("V" if v else "O")
        for v, e in zip(visible, run.errors)
    )
    print("\nvisibility/error timeline ('#,.' ok; 'V,O' error > 0.4 m):")
    for i in range(0, len(timeline), 80):
        print(" ", timeline[i : i + 80])

    err_vis = run.errors[visible][20:].mean()
    err_occ = run.errors[~visible].mean() if (~visible).any() else float("nan")
    print(f"\nmean error while visible : {err_vis:.3f} m")
    print(f"mean error while occluded: {err_occ:.3f} m")
    print("\nOcclusion costs accuracy (the motion model must carry the object)\n"
          "but the filter re-acquires on every return to view — the censored\n"
          "likelihood keeps the particle cloud honest about where the object\n"
          "can NOT be (anywhere inside the view cone).")


if __name__ == "__main__":
    main()
