#!/usr/bin/env python
"""Econometrics application: filtering stochastic volatility from returns.

The paper's introduction motivates particle filters with econometrics
(Flury & Shephard, reference [3]). Here the latent log-volatility of a
simulated return series is recovered by the distributed particle filter —
a measurement model (z ~ N(0, exp(x))) with no closed-form filter.

Run:  python examples/stochastic_volatility_filtering.py
"""

import numpy as np

from repro.bench import format_table
from repro.core import (
    CentralizedFilterConfig,
    CentralizedParticleFilter,
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_filter,
)
from repro.models import StochasticVolatilityModel
from repro.prng import make_rng


def main() -> None:
    model = StochasticVolatilityModel(mu=-1.0, phi=0.97, sigma=0.2)
    truth = model.simulate(250, make_rng("numpy", seed=11))
    returns = truth.measurements[:, 0]
    print(f"simulated {truth.n_steps} daily returns; |r| range "
          f"[{np.abs(returns).min():.4f}, {np.abs(returns).max():.4f}]")

    rows = []
    filters = {
        "centralized (4096)": CentralizedParticleFilter(
            model, CentralizedFilterConfig(n_particles=4096, estimator="weighted_mean", resampler="rws", seed=1)
        ),
        "distributed 64x64": DistributedParticleFilter(
            model,
            DistributedFilterConfig(n_particles=64, n_filters=64, estimator="weighted_mean", seed=1),
        ),
        "distributed 16x64 (tiny sub-filters)": DistributedParticleFilter(
            model,
            DistributedFilterConfig(n_particles=16, n_filters=64, estimator="weighted_mean", seed=1),
        ),
    }
    for name, pf in filters.items():
        run = run_filter(pf, model, truth)
        corr = float(np.corrcoef(run.estimates[50:, 0], truth.states[50:, 0])[0, 1])
        rows.append(
            {
                "filter": name,
                "logvol_rmse": run.mean_error(warmup=50),
                "corr_with_truth": corr,
                "host_hz": run.update_rate_hz,
            }
        )
    print(format_table(rows))
    print(
        "\nVolatility is only weakly identified per observation, so the error\n"
        "floor is high — but the filtered log-volatility tracks the truth\n"
        "(positive correlation), and the distributed network matches the\n"
        "centralized filter at equal budget, as in the paper's Fig. 9."
    )


if __name__ == "__main__":
    main()
