#!/usr/bin/env python
"""Tutorial: plugging your own dynamical system into the framework.

The paper: "Our application separates generic particle filtering from
model-specific routines. New dynamical system models can be easily added."
This walkthrough adds a model the library does not ship — a noisy pendulum
observed only through the horizontal position of its bob — and runs the full
distributed machinery on it, untouched.

A model implements six methods; everything else (sub-filters, exchange,
resampling, estimators, diagnostics, platform projection) comes for free.

Run:  python examples/custom_model_tutorial.py
"""

import numpy as np

from repro.backends import DeviceSimulatedFilter
from repro.core import DistributedFilterConfig, DistributedParticleFilter, run_filter
from repro.models.base import StateSpaceModel
from repro.prng import make_rng


class PendulumModel(StateSpaceModel):
    """A damped pendulum: state (angle, angular velocity).

    Measurement: the bob's horizontal position ``L sin(angle)`` — nonlinear,
    and sign-ambiguous near the top, so the posterior can be bimodal.
    """

    # 1) Declare the dimensions.
    state_dim = 2
    measurement_dim = 1
    control_dim = 0

    def __init__(self, length=1.0, damping=0.1, h_s=0.05, sigma_q=0.05, sigma_r=0.02):
        self.g_over_l = 9.81 / length
        self.length = length
        self.damping = damping
        self.h_s = h_s
        self.sigma_q = sigma_q
        self.sigma_r = sigma_r

    # 2) The prior over initial states (vectorized over n particles).
    def initial_particles(self, n, rng, dtype=np.float64):
        z = rng.normal((n, 2), dtype=np.float64)
        return (np.array([1.2, 0.0]) + np.array([0.5, 0.5]) * z).astype(dtype, copy=False)

    # 3) The transition kernel p(x_k | x_{k-1}) — note the batch shape
    #    (..., 2): one call advances every particle of every sub-filter.
    def transition(self, states, control, k, rng):
        states = np.asarray(states)
        theta, omega = states[..., 0], states[..., 1]
        noise = rng.normal(states.shape, dtype=np.float64).astype(states.dtype, copy=False)
        omega_new = omega + self.h_s * (-self.g_over_l * np.sin(theta) - self.damping * omega)
        theta_new = theta + self.h_s * omega_new
        out = np.stack([theta_new, omega_new], axis=-1)
        return out + self.sigma_q * noise * np.sqrt(self.h_s)

    # 4) The measurement log-density log p(z_k | x_k), per particle.
    def log_likelihood(self, states, measurement, k):
        z_hat = self.length * np.sin(np.asarray(states)[..., 0])
        d = (z_hat - float(np.asarray(measurement).reshape(()))) / self.sigma_r
        return -0.5 * d * d

    # 5) + 6) Ground-truth simulation hooks.
    def initial_state(self, rng):
        return np.array([1.2, 0.0])

    def observe(self, state, k, rng):
        z = self.length * np.sin(np.asarray(state)[0])
        return np.array([z]) + self.sigma_r * rng.normal((1,))


def main() -> None:
    model = PendulumModel()
    truth = model.simulate(150, make_rng("numpy", seed=0))

    # The generic machinery, completely unchanged:
    cfg = DistributedFilterConfig(
        n_particles=32, n_filters=32, topology="ring", estimator="weighted_mean", seed=1
    )
    pf = DistributedParticleFilter(model, cfg)
    run = run_filter(pf, model, truth)
    angle_err = np.abs(run.estimates[:, 0] - truth.states[:, 0])
    print(f"pendulum angle error: {angle_err[30:].mean():.4f} rad "
          f"(measurement noise corresponds to ~{model.sigma_r / model.length:.3f} rad)")
    print(f"host update rate    : {run.update_rate_hz:.0f} Hz")

    # Even the platform projection works on the new model (the cost model
    # scales the sampling kernel by the state dimension):
    sim = DeviceSimulatedFilter(DistributedParticleFilter(model, cfg), "gtx-580")
    print(f"projected GTX 580   : {sim.simulated_update_rate_hz:.0f} Hz for this configuration")

    assert angle_err[30:].mean() < 0.1, "tutorial model should track"
    print("\nThat is the whole integration surface: six methods.")


if __name__ == "__main__":
    main()
