"""Chaos tracking: RMSE vs. fraction of killed sub-filter blocks.

Runs the robot-arm tracking problem on the multiprocess backend while a
seeded :class:`~repro.resilience.FaultPlan` kills a growing number of
worker blocks mid-run. The master detects each crash, heals the exchange
topology around the dead sub-filters, and keeps estimating from the
survivors — the point of the exercise is to *measure* the degraded-accuracy
contract of ``docs/robustness.md``: error grows with the killed fraction
instead of the run hanging or going NaN.

Run:  PYTHONPATH=src python examples/chaos_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro.backends import MultiprocessDistributedParticleFilter
from repro.core import DistributedFilterConfig, run_filter
from repro.models import RobotArmModel, RobotArmParams, lemniscate, simulate_arm_tracking
from repro.prng import make_rng
from repro.resilience import FaultPlan

N_WORKERS = 8
N_STEPS = 60
WARMUP = 15
KILL_STEP = 20  # all scheduled kills strike at this round


def main() -> None:
    model = RobotArmModel(RobotArmParams(n_joints=3))
    pos, vel = lemniscate(N_STEPS, h_s=model.params.h_s)
    truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", 42))
    config = DistributedFilterConfig(
        n_particles=32, n_filters=32, topology="ring",
        estimator="weighted_mean", seed=7,
    )

    print(f"robot-arm tracking, {config.n_filters} sub-filters over "
          f"{N_WORKERS} worker blocks, {N_STEPS} steps; kills strike at "
          f"round {KILL_STEP}\n")
    print(f"{'killed':>8} {'fraction':>9} {'RMSE [m]':>9} {'vs clean':>9}  diagnostics")

    baseline = None
    for n_kill in range(0, 4):
        plan = FaultPlan(seed=0)
        for w in range(n_kill):
            plan.kill(worker=w, step=KILL_STEP)
        pf = MultiprocessDistributedParticleFilter(
            model, config, n_workers=N_WORKERS,
            fault_plan=plan, on_failure="heal", recv_timeout=30.0,
        )
        with pf:
            run = run_filter(pf, model, truth)
            diag = pf.diagnostics()
        rmse = run.mean_error(warmup=WARMUP)
        assert np.isfinite(run.estimates).all(), "estimate went non-finite!"
        if baseline is None:
            baseline = rmse
        ratio = rmse / baseline if baseline > 0 else float("inf")
        info = (f"dead workers {diag['dead_workers']}" if diag["dead_workers"]
                else "fault-free")
        print(f"{n_kill:>8} {n_kill / N_WORKERS:>9.3f} {rmse:>9.4f} {ratio:>8.2f}x  {info}")

    print("\nEvery run completed all steps with finite estimates; accuracy "
          "degrades gracefully\nwith the killed fraction (docs/robustness.md).")


if __name__ == "__main__":
    main()
