"""Chaos tracking: graceful degradation, then full durable recovery.

Act 1 — *degrade*: runs the robot-arm tracking problem on the multiprocess
backend while a seeded :class:`~repro.resilience.FaultPlan` kills a growing
number of worker blocks mid-run. The master detects each crash, heals the
exchange topology around the dead sub-filters, and keeps estimating from
the survivors — measuring the degraded-accuracy contract of
``docs/robustness.md``: error grows with the killed fraction instead of the
run hanging or going NaN.

Act 2 — *recover*: the full durable-execution loop on one run:
kill → heartbeat detection mid-step → respawn from donor neighbours →
checkpoint at a step boundary → resume in a fresh process tree, and verify
the resumed tail is bit-identical to the run that was never interrupted.

Run:  PYTHONPATH=src python examples/chaos_tracking.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.backends import MultiprocessDistributedParticleFilter
from repro.core import DistributedFilterConfig, run_filter
from repro.models import (
    LinearGaussianModel,
    RobotArmModel,
    RobotArmParams,
    lemniscate,
    simulate_arm_tracking,
)
from repro.prng import make_rng
from repro.resilience import FaultPlan, Supervisor

N_WORKERS = 8
N_STEPS = 60
WARMUP = 15
KILL_STEP = 20  # all scheduled kills strike at this round


def recovery_act() -> None:
    """kill → detect mid-step → respawn → checkpoint → bit-identical resume."""
    model = LinearGaussianModel(A=[[0.9]], C=[[1.0]], Q=[[0.04]], R=[[0.01]])
    config = DistributedFilterConfig(
        n_particles=32, n_filters=8, topology="ring", n_exchange=1,
        estimator="weighted_mean", seed=7,
    )
    n_steps, cut = 16, 10
    truth = model.simulate(n_steps, make_rng("numpy", seed=8))
    meas = np.asarray(truth.measurements, dtype=np.float64)
    plan = FaultPlan(seed=0).kill(worker=1, step=4)

    def make(sup=None):
        return MultiprocessDistributedParticleFilter(
            model, config, n_workers=4, fault_plan=plan, on_failure="heal",
            respawn_dead=True, recv_timeout=60.0, supervisor=sup)

    # the uninterrupted chaos run: the golden trace
    with make() as pf:
        golden = np.stack([pf.step(meas[k]) for k in range(n_steps)])

    # same run, supervised, checkpointed at a step boundary after the respawn
    ckpt = os.path.join(tempfile.mkdtemp(prefix="esthera-"), "run.ckpt")
    sup = Supervisor(beat_timeout=0.25, max_missed=2)
    with make(sup) as pf:
        head = np.stack([pf.step(meas[k]) for k in range(cut)])
        pf.save_checkpoint(ckpt)
        report = pf.report.summary()
    print(f"  killed worker 1 at round 4; escalations {report['escalations']}, "
          f"checkpoint at step {cut}")
    for ev in sup.event_log():
        print(f"    [k={ev['step']:>2}] w{ev['worker_id']} {ev['kind']}: {ev['detail']}")

    # resume in a fresh process tree and finish the trajectory
    with make() as pf:
        pf.load_checkpoint(ckpt)
        tail = np.stack([pf.step(meas[k]) for k in range(cut, n_steps)])

    resumed = np.vstack([head, tail])
    assert np.array_equal(resumed, golden), "resume diverged from golden trace!"
    print(f"  resumed steps {cut}..{n_steps - 1} bit-identical to the "
          "uninterrupted run ✓")


def main() -> None:
    model = RobotArmModel(RobotArmParams(n_joints=3))
    pos, vel = lemniscate(N_STEPS, h_s=model.params.h_s)
    truth = simulate_arm_tracking(model, pos, vel, make_rng("numpy", 42))
    config = DistributedFilterConfig(
        n_particles=32, n_filters=32, topology="ring",
        estimator="weighted_mean", seed=7,
    )

    print(f"robot-arm tracking, {config.n_filters} sub-filters over "
          f"{N_WORKERS} worker blocks, {N_STEPS} steps; kills strike at "
          f"round {KILL_STEP}\n")
    print(f"{'killed':>8} {'fraction':>9} {'RMSE [m]':>9} {'vs clean':>9}  diagnostics")

    baseline = None
    for n_kill in range(0, 4):
        plan = FaultPlan(seed=0)
        for w in range(n_kill):
            plan.kill(worker=w, step=KILL_STEP)
        pf = MultiprocessDistributedParticleFilter(
            model, config, n_workers=N_WORKERS,
            fault_plan=plan, on_failure="heal", recv_timeout=30.0,
        )
        with pf:
            run = run_filter(pf, model, truth)
            diag = pf.diagnostics()
        rmse = run.mean_error(warmup=WARMUP)
        assert np.isfinite(run.estimates).all(), "estimate went non-finite!"
        if baseline is None:
            baseline = rmse
        ratio = rmse / baseline if baseline > 0 else float("inf")
        info = (f"dead workers {diag['dead_workers']}" if diag["dead_workers"]
                else "fault-free")
        print(f"{n_kill:>8} {n_kill / N_WORKERS:>9.3f} {rmse:>9.4f} {ratio:>8.2f}x  {info}")

    print("\nEvery run completed all steps with finite estimates; accuracy "
          "degrades gracefully\nwith the killed fraction (docs/robustness.md).")

    print("\nrecovery: kill → detect → respawn → checkpoint → resume")
    recovery_act()


if __name__ == "__main__":
    main()
