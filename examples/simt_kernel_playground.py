#!/usr/bin/env python
"""Run the device kernels on the SIMT simulator and inspect their hardware
behaviour: barriers, divergence, local-memory bank conflicts, and the
concurrency collapse of Vose's parallel alias-table construction.

Run:  python examples/simt_kernel_playground.py
"""

import numpy as np

from repro.device import WorkGroup
from repro.kernels import (
    alias_build_workgroup,
    bitonic_network,
    bitonic_sort_workgroup,
    blelloch_scan_workgroup,
    rws_workgroup,
)


def main() -> None:
    rng = np.random.default_rng(0)
    m = 256

    print("== Bitonic sort of one sub-filter's weights (m = 256) ==")
    wg = WorkGroup(m)
    keys = wg.local_array(m)
    keys[:] = rng.random(m)
    bitonic_sort_workgroup(wg, keys, descending=True)
    stats = wg.finalize()
    print(f"  network stages / barriers : {len(bitonic_network(m))} / {stats.barriers}")
    print(f"  divergent selects         : {stats.divergent_selects}")
    print(f"  local access cycles       : {stats.local_access_cycles}")
    assert np.all(np.diff(keys.data) <= 0), "sorted descending"

    print("\n== Blelloch scan: bank conflicts with and without padding ==")
    data = rng.random(512)
    for avoid in (False, True):
        wg = WorkGroup(256)
        blelloch_scan_workgroup(wg, data, avoid_conflicts=avoid)
        s = wg.finalize()
        label = "padded (conflict-avoiding)" if avoid else "naive layout          "
        print(f"  {label}: {s.local_access_cycles} access cycles, {s.local_conflicted} conflicted accesses")

    print("\n== RWS kernel (scan + per-lane binary search) ==")
    wg = WorkGroup(m)
    idx = rws_workgroup(wg, rng.random(m) + 1e-6, rng.random(m))
    s = wg.finalize()
    print(f"  resampled indices in [{idx.min()}, {idx.max()}], barriers {s.barriers}")

    print("\n== Vose alias build: concurrency per pairing round ==")
    for label, w in (
        ("balanced weights ", rng.random(m) + 0.5),
        ("skewed weights   ", np.concatenate([[m / 2.0], np.full(m - 1, 1e-3)])),
    ):
        wg = WorkGroup(m)
        _, _, trace = alias_build_workgroup(wg, w)
        head = ", ".join(map(str, trace.concurrency[:8]))
        tail = "..." if trace.rounds > 8 else ""
        print(f"  {label}: {trace.rounds:4d} rounds, pairs/round = [{head}{tail}]"
              f" -> final concurrency {trace.final_concurrency}")
    print("\nThe skewed case shows the paper's observation: 'concurrency usually"
          "\ndrops steeply towards one' — why Vose's is not faster on sub-filters.")


if __name__ == "__main__":
    main()
