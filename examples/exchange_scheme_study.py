#!/usr/bin/env python
"""Exchange-scheme study: reproduce the paper's configuration rules of thumb.

Sweeps the exchange scheme (All-to-All / Ring / 2D Torus) and the number of
exchanged particles t over several network sizes, then prints the resulting
accuracy tables and the derived guidance (Sections VII-D and IX).

Run:  python examples/exchange_scheme_study.py        (takes ~a minute)
"""

from repro.bench import format_table, run_fig6, run_fig7


def main() -> None:
    print("== Estimation error by exchange scheme (lower is better) ==")
    fig6 = run_fig6(particles_per_filter=(8, 32), n_filters=(4, 16, 64), n_runs=3)
    print(format_table(fig6))

    print("\n== Estimation error by particles-per-exchange t ==")
    fig7 = run_fig7(particles_per_filter=(8, 32), n_filters=(8, 32), n_runs=3)
    print(format_table(fig7))

    print(
        "\nRules of thumb (matching the paper's conclusions):\n"
        " 1. All-to-All collapses particle diversity: the same best particles\n"
        "    flood every sub-filter, so it delivers the worst estimates.\n"
        " 2. Low connectivity (Ring) wins for small networks; the 2D Torus's\n"
        "    extra links pay off once the network is large, spreading likely\n"
        "    particles faster.\n"
        " 3. Exchanging a single particle per neighbour pair captures nearly\n"
        "    the whole benefit; t >= 2 is a minor improvement.\n"
        " 4. Few particles per sub-filter can be compensated by adding more\n"
        "    sub-filters - which is exactly the direction hardware is growing."
    )


if __name__ == "__main__":
    main()
