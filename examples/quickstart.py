#!/usr/bin/env python
"""Quickstart: track an object with the distributed particle filter.

Builds the paper's robotic-arm model, simulates a lemniscate object path,
runs a small distributed filter network and reports accuracy and update rate.

Run:  python examples/quickstart.py
"""

from repro import DistributedFilterConfig, DistributedParticleFilter
from repro.core import run_filter
from repro.models import RobotArmModel, lemniscate, simulate_arm_tracking
from repro.prng import make_rng


def main() -> None:
    # The paper's model: 5-joint arm + camera, state dimension 9 (Table II).
    model = RobotArmModel()

    # Ground truth: the object follows a figure-eight; the arm's joints move
    # under a known control with process noise; measurements are noisy.
    positions, velocities = lemniscate(200, h_s=model.params.h_s)
    truth = simulate_arm_tracking(model, positions, velocities, make_rng("numpy", 42))

    # A network of 64 sub-filters x 64 particles on a ring, exchanging one
    # particle per neighbour per round (the paper's rule-of-thumb setup,
    # scaled to laptop size).
    config = DistributedFilterConfig(
        n_particles=64,
        n_filters=64,
        topology="ring",
        n_exchange=1,
        estimator="weighted_mean",
        seed=1,
    )
    pf = DistributedParticleFilter(model, config)

    result = run_filter(pf, model, truth)
    print(f"total particles   : {config.total_particles}")
    print(f"object-pos error  : {result.mean_error(warmup=30):.3f} m (after convergence)")
    print(f"update rate (host): {result.update_rate_hz:.1f} Hz")
    print("kernel seconds    :", {k: round(v, 3) for k, v in result.kernel_seconds.items()})


if __name__ == "__main__":
    main()
