#!/usr/bin/env python
"""Why particle filters: tracking through cluttered detections.

The paper's introduction motivates PFs with visual tracking, where detectors
fire on clutter. A Kalman filter treats every detection as Gaussian evidence
and gets yanked off target by outliers; the particle filter's mixture
likelihood simply down-weights them.

Run:  python examples/tracking_in_clutter.py
"""

import numpy as np

from repro.baselines import ExtendedKalmanFilter
from repro.bench import format_table
from repro.core import (
    DistributedFilterConfig,
    DistributedParticleFilter,
    run_filter,
)
from repro.models import ClutterTrackingModel
from repro.prng import make_rng


def naive_kalman(m: ClutterTrackingModel) -> ExtendedKalmanFilter:
    """A Kalman filter that (wrongly) trusts every detection."""
    return ExtendedKalmanFilter(
        f=lambda x, u, k: np.array([x[0] + m.h_s * x[2], x[1] + m.h_s * x[3], x[2], x[3]]),
        h=lambda x: x[:2],
        Q=np.diag([m.sigma_pos**2] * 2 + [m.sigma_vel**2] * 2),
        R=np.eye(2) * m.sigma_meas**2,
        x0_mean=m.x0_mean,
        x0_cov=np.eye(4) * m.x0_spread**2,
    )


def main() -> None:
    rows = []
    for p_clutter in (0.0, 0.1, 0.25, 0.4):
        m = ClutterTrackingModel(p_clutter=p_clutter)
        truth = m.simulate(100, make_rng("numpy", seed=0))
        pf = DistributedParticleFilter(
            m, DistributedFilterConfig(n_particles=64, n_filters=32, estimator="weighted_mean", seed=1)
        )
        pf_err = run_filter(pf, m, truth).mean_error(warmup=20)
        kf_err = run_filter(naive_kalman(m), m, truth).mean_error(warmup=20)
        rows.append(
            {
                "clutter_rate": p_clutter,
                "particle_filter_err": pf_err,
                "kalman_err": kf_err,
                "pf_advantage": kf_err / pf_err,
            }
        )
    print("== Tracking error vs clutter rate (position error, m) ==")
    print(format_table(rows))
    print(
        "\nWith clean detections the Kalman filter is optimal and the PF just\n"
        "matches it. Every percent of clutter widens the gap: the PF's\n"
        "heavy-tailed mixture likelihood treats outliers as outliers, which\n"
        "no Gaussian filter can. This is the regime the paper's introduction\n"
        "builds its case on."
    )


if __name__ == "__main__":
    main()
